package partition

import (
	"fmt"
	"sort"
	"time"

	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/san"
)

// Boundary-exchange plans. SyncShared and ReduceShared used to
// rediscover the part-boundary structure on every round: filter all
// entities through IsShared, allocate Remotes slices per entity, and
// ship a 5-byte (type, index) header per entity so the receiver could
// find the target copy. A BoundaryPlan compiles that structure once —
// per peer part, the CSR list of local entities in an order both sides
// agree on without communication — and is cached on the DMesh against
// the parts' topology epochs, so steady-state rounds are header-free
// and allocation-free, the star-forest idea of PETSc's SF/DMPlex
// distribution applied to the paper's part-boundary links.
//
// The order agreement needs no messages: for sync (owner to copies)
// the owner emits its owned shared entities sorted by its own handle,
// and each receiver sorts its mirror copies by the owner-side handle
// its remote-copy link stores — identical keys by link symmetry. For
// reduce (copies to owner) the roles flip: each sender sorts by the
// owner-side handle, the owner by its own handle.
//
// Planned messages carry, per (from part, to part) section, the two
// part ids followed by one length-prefixed payload per entity in the
// agreed order. When the sanitizer is enabled the layer falls back to
// the self-describing headered wire format, which pumi-san's decoders
// and the corruption checks can validate entity by entity.

// planDir is the direction of a compiled exchange.
type planDir uint8

const (
	dirSync   planDir = iota // owner -> copies
	dirReduce                // copies -> owner
)

func (d planDir) String() string {
	if d == dirSync {
		return "sync"
	}
	return "reduce"
}

// dimsKey identifies one cached plan: a bitmask of entity dimensions
// plus the direction.
type dimsKey struct {
	mask uint8
	dir  planDir
}

func dimsMask(dims []int) uint8 {
	var m uint8
	for _, d := range dims {
		if d < 0 || d > 3 {
			panic(fmt.Sprintf("partition: bad exchange dimension %d", d))
		}
		m |= 1 << d
	}
	return m
}

// partPlan is one local part's compiled schedule: per peer part, the
// CSR slice of local entities to pack (send side) and to apply in
// arrival order (recv side). Peers appear in ascending part id; the
// entity order within a peer run is the owner-handle agreed order.
type partPlan struct {
	sendPeers []int32
	sendOff   []int32
	sendEnts  []mesh.Ent

	recvPeers []int32
	recvOff   []int32
	recvEnts  []mesh.Ent
}

// recvPeerIndex finds the recv run for the given peer part, -1 if the
// plan expects nothing from it.
func (pp *partPlan) recvPeerIndex(part int32) int {
	for i, q := range pp.recvPeers {
		if q == part {
			return i
		}
	}
	return -1
}

// BoundaryPlan is a compiled boundary exchange for one (dims,
// direction) pair across all local parts, valid exactly while every
// part's topology epoch matches the recorded vector.
type BoundaryPlan struct {
	dims   uint8
	dir    planDir
	epochs []uint64 // per local part, mesh.TopoEpoch at compile time
	parts  []partPlan

	// returnRanks are peer ranks this rank receives planned data from
	// without sending any back. execPlan sends them an empty message
	// each round so the transport's pooled payload arrays circulate
	// back instead of accumulating at the receiving side — without
	// this, one-directional exchanges (the common case: sync flows
	// owner to copies) drain the sending rank's buffer pool and force
	// an allocation every round.
	returnRanks []int
}

// planPair is compile-time scratch: one (peer, entity) incidence with
// its agreed ordering key.
type planPair struct {
	peer int32
	key  mesh.Ent // ordering key: the owner-side handle
	ent  mesh.Ent // local entity
}

// boundaryPlan returns the cached plan for (dims, dir), recompiling it
// if any local part's topology epoch moved since the last compile.
// Compilation is purely local — no communication — so ranks may
// recompile independently without collective hazards.
func (dm *DMesh) boundaryPlan(dims []int, dir planDir) *BoundaryPlan {
	key := dimsKey{mask: dimsMask(dims), dir: dir}
	if pl := dm.plans[key]; pl != nil && dm.epochsMatch(pl.epochs) {
		dm.Ctx.Counters().Add("partition.plan.hit", 1)
		return pl
	}
	dm.Ctx.Counters().Add("partition.plan.miss", 1)
	tr := dm.Ctx.Trace()
	tr.Begin("partition.plan")
	defer tr.End("partition.plan")
	start := time.Now()
	pl := compilePlan(dm, key)
	dm.Ctx.Metrics().Histogram("partition.plan.compile.ns").Observe(dm.Ctx.Rank(), int64(time.Since(start)))
	if dm.plans == nil {
		dm.plans = map[dimsKey]*BoundaryPlan{}
	}
	dm.plans[key] = pl
	return pl
}

// InvalidatePlans drops every cached boundary plan. Plans revalidate
// by topology epoch automatically; this exists for callers that want
// to bound memory after large topology changes.
func (dm *DMesh) InvalidatePlans() {
	clear(dm.plans)
	dm.ghostPlan = nil
}

// compilePlan builds the schedule for every local part. For each
// shared entity of a planned dimension:
//
//   - sync: the owner sends to every copy; a non-owner receives from
//     the owner (which holds a copy by the residence invariant);
//   - reduce: a non-owner sends to the owner; the owner receives from
//     every copy.
//
// Send runs are emitted in local-handle order (PartBoundary iterates
// types then slots, which is exactly Ent.Less order for ascending
// dims); recv runs are sorted by the owner-side handle stored in the
// remote-copy link. Both equal the owner's emission order, so the wire
// needs no per-entity addressing.
func compilePlan(dm *DMesh, key dimsKey) *BoundaryPlan {
	pl := &BoundaryPlan{
		dims:   key.mask,
		dir:    key.dir,
		epochs: make([]uint64, len(dm.Parts)),
		parts:  make([]partPlan, len(dm.Parts)),
	}
	var sends, recvs []planPair
	for li, part := range dm.Parts {
		m := part.M
		sends, recvs = sends[:0], recvs[:0]
		for d := 0; d <= 3; d++ {
			if key.mask&(1<<d) == 0 {
				continue
			}
			for e := range m.PartBoundary(d) {
				if m.IsOwned(e) {
					m.EachRemote(e, func(q int32, h mesh.Ent) bool {
						if key.dir == dirSync {
							sends = append(sends, planPair{peer: q, key: e, ent: e})
						} else {
							recvs = append(recvs, planPair{peer: q, key: e, ent: e})
						}
						return true
					})
					continue
				}
				owner := m.Owner(e)
				h, ok := m.RemoteCopy(e, owner)
				if !ok {
					// Owner outside the link set: Verify flags this
					// state; the exchange skips it like the headered
					// path did.
					continue
				}
				if key.dir == dirSync {
					recvs = append(recvs, planPair{peer: owner, key: h, ent: e})
				} else {
					sends = append(sends, planPair{peer: owner, key: h, ent: e})
				}
			}
		}
		pp := &pl.parts[li]
		pp.sendPeers, pp.sendOff, pp.sendEnts = buildCSR(sends)
		pp.recvPeers, pp.recvOff, pp.recvEnts = buildCSR(recvs)
		pl.epochs[li] = m.TopoEpoch()
	}
	pl.returnRanks = returnRanks(dm, pl.parts)
	return pl
}

// returnRanks computes the ranks the plan receives from but never
// sends to (see BoundaryPlan.returnRanks).
func returnRanks(dm *DMesh, parts []partPlan) []int {
	sendTo := map[int]bool{}
	recvFrom := map[int]bool{}
	for li := range parts {
		for _, q := range parts[li].sendPeers {
			sendTo[dm.RankOf(q)] = true
		}
		for _, q := range parts[li].recvPeers {
			recvFrom[dm.RankOf(q)] = true
		}
	}
	var out []int
	for r := range recvFrom {
		if !sendTo[r] {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// buildCSR groups pairs by peer (ascending) ordered by key within each
// run, and lays them out as peer list + offsets + flat entity slice.
func buildCSR(pairs []planPair) (peers []int32, off []int32, ents []mesh.Ent) {
	sort.SliceStable(pairs, func(a, b int) bool {
		if pairs[a].peer != pairs[b].peer {
			return pairs[a].peer < pairs[b].peer
		}
		return pairs[a].key.Less(pairs[b].key)
	})
	off = append(off, 0)
	for _, p := range pairs {
		if len(peers) == 0 || peers[len(peers)-1] != p.peer {
			peers = append(peers, p.peer)
			off = append(off, off[len(off)-1])
		}
		ents = append(ents, p.ent)
		off[len(off)-1]++
	}
	return peers, off, ents
}

// planned reports whether exchanges run on compiled plans. Under the
// sanitizer every rank falls back to the self-describing headered wire
// format (the value is process-global, so the choice is uniform across
// ranks and the formats never mix).
func planned() bool { return !san.Enabled() }

// execPlan runs one compiled exchange round: pack every send run into
// the per-rank buffers with (from, to) section framing, exchange, and
// apply each arriving section against the matching recv run. The
// steady-state round performs no allocations: the plan, the payload
// scratch, the sub-reader and the transport buffers are all reused.
func (dm *DMesh) execPlan(pl *BoundaryPlan, pack func(p *Part, e mesh.Ent, b *pcu.Buffer), apply func(p *Part, e mesh.Ent, r *pcu.Reader)) {
	ctx := dm.Ctx
	if dm.execNs == nil {
		dm.execNs = ctx.Metrics().Histogram("partition.plan.exec.ns")
	}
	var start time.Time
	if dm.execNs != nil {
		start = time.Now()
	}
	for li := range dm.Parts {
		part := dm.Parts[li]
		pp := &pl.parts[li]
		from := part.M.Part()
		for pi, q := range pp.sendPeers {
			b := ctx.To(dm.RankOf(q))
			b.Int32(from)
			b.Int32(q)
			for _, e := range pp.sendEnts[pp.sendOff[pi]:pp.sendOff[pi+1]] {
				dm.payload.Reset()
				pack(part, e, &dm.payload)
				b.Bytes(dm.payload.Raw())
			}
		}
	}
	for _, r := range pl.returnRanks {
		ctx.To(r) // empty return message; see BoundaryPlan.returnRanks
	}
	for _, msg := range ctx.Exchange() {
		for !msg.Data.Empty() {
			from := msg.Data.Int32()
			to := msg.Data.Int32()
			part := dm.LocalPart(to)
			pp := &pl.parts[dm.localIndex(to)]
			j := pp.recvPeerIndex(from)
			if j < 0 {
				panic(fmt.Sprintf("partition: %s plan on part %d expects nothing from part %d (stale plan?)",
					pl.dir, to, from))
			}
			for _, e := range pp.recvEnts[pp.recvOff[j]:pp.recvOff[j+1]] {
				dm.sub.Reset(msg.Data.BytesNoCopy())
				apply(part, e, &dm.sub)
			}
		}
		msg.Data.Done()
	}
	if dm.execNs != nil {
		dm.execNs.Observe(ctx.Rank(), int64(time.Since(start)))
	}
}

// checkPlans distributively validates the compiled sync schedules, one
// dimension at a time: every sender transmits its per-peer run lengths
// and owner-side ordering keys through the headered path, and each
// receiver checks them against its own recv runs. Called from
// CheckDistributed so Verify covers the planner too.
func checkPlans(dm *DMesh, record func(error)) {
	if !planned() {
		return
	}
	for d := 0; d < dm.Dim; d++ {
		pl := dm.boundaryPlan(dimScratch[d:d+1], dirSync)
		ph := dm.beginPhase()
		for li, part := range dm.Parts {
			pp := &pl.parts[li]
			for pi, q := range pp.sendPeers {
				b := ph.to(part.M.Part(), q)
				run := pp.sendEnts[pp.sendOff[pi]:pp.sendOff[pi+1]]
				b.Int32(int32(len(run)))
				for _, e := range run {
					b.Byte(byte(e.T))
					b.Int32(e.I)
				}
			}
		}
		for _, msg := range ph.exchange() {
			pp := &pl.parts[dm.localIndex(msg.To)]
			j := pp.recvPeerIndex(msg.From)
			var run []mesh.Ent
			if j >= 0 {
				run = pp.recvEnts[pp.recvOff[j]:pp.recvOff[j+1]]
			}
			for !msg.Data.Empty() {
				n := int(msg.Data.Int32())
				if n != len(run) {
					record(fmt.Errorf("partition: dim-%d sync plan mismatch: part %d sends %d entities to part %d, which expects %d",
						d, msg.From, n, msg.To, len(run)))
				}
				m := dm.LocalPart(msg.To).M
				for k := 0; k < n; k++ {
					key := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
					if k >= len(run) {
						continue
					}
					h, ok := m.RemoteCopy(run[k], msg.From)
					if !ok || h != key {
						record(fmt.Errorf("partition: dim-%d sync plan order mismatch at slot %d of part %d<-part %d",
							d, k, msg.To, msg.From))
					}
				}
			}
		}
	}
}

// dimScratch lets checkPlans take single-dim subslices without
// allocating per call.
var dimScratch = [4]int{0, 1, 2, 3}
