package partition

import (
	"errors"
	"fmt"

	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// CheckDistributed verifies the distributed mesh invariants and returns
// the first violation found on this rank (collective; every rank must
// call it):
//
//   - every part passes mesh.CheckConsistency;
//   - remote-copy symmetry: if part P records a copy of e on Q with
//     handle h, then Q holds a live h whose global id matches and whose
//     remotes point back at (P, e);
//   - ownership agreement: all copies record the same owning part, and
//     the owner is one of the residence parts;
//   - elements are never shared.
func CheckDistributed(dm *DMesh) error {
	var firstErr error
	record := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	for _, part := range dm.Parts {
		record(part.M.CheckConsistency())
		m := part.M
		for el := range m.Elements() {
			if m.IsShared(el) {
				record(fmt.Errorf("partition: element %v on part %d is shared", el, m.Part()))
				break
			}
		}
	}

	// Remote symmetry + owner agreement.
	ph := dm.beginPhase()
	for _, part := range dm.Parts {
		m := part.M
		for d := 0; d < dm.Dim; d++ {
			for e := range m.PartBoundary(d) {
				m.EachRemote(e, func(q int32, h mesh.Ent) bool {
					b := ph.to(m.Part(), q)
					b.Byte(byte(d))
					b.Int64(part.Gid(e))
					b.Byte(byte(h.T))
					b.Int32(h.I)
					b.Byte(byte(e.T))
					b.Int32(e.I)
					b.Int32(m.Owner(e))
					return true
				})
			}
		}
	}
	for _, msg := range ph.exchange() {
		part := dm.LocalPart(msg.To)
		m := part.M
		for !msg.Data.Empty() {
			d := int(msg.Data.Byte())
			gid := msg.Data.Int64()
			mine := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
			theirs := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
			owner := msg.Data.Int32()
			if !m.Alive(mine) {
				record(fmt.Errorf("partition: part %d claims dead copy %v on part %d (gid %d)",
					msg.From, mine, msg.To, gid))
				continue
			}
			if got := part.Gid(mine); got != gid {
				record(fmt.Errorf("partition: gid mismatch on part %d: %v has %d, peer says %d",
					msg.To, mine, got, gid))
			}
			if mine.Dim() != d {
				record(fmt.Errorf("partition: dim mismatch for gid %d on part %d", gid, msg.To))
			}
			back, ok := m.RemoteCopy(mine, msg.From)
			if !ok {
				record(fmt.Errorf("partition: part %d lacks the back link to %d for %v",
					msg.To, msg.From, mine))
			} else if back != theirs {
				record(fmt.Errorf("partition: back link mismatch on part %d: %v vs %v",
					msg.To, back, theirs))
			}
			if m.Owner(mine) != owner {
				record(fmt.Errorf("partition: owner disagreement for gid %d: part %d says %d, part %d says %d",
					gid, msg.To, m.Owner(mine), msg.From, owner))
			}
		}
	}

	// Owner must be a residence part.
	for _, part := range dm.Parts {
		m := part.M
		for d := 0; d < dm.Dim; d++ {
			for e := range m.PartBoundary(d) {
				if !m.Residence(e).Has(m.Owner(e)) {
					record(fmt.Errorf("partition: owner %d of %v on part %d outside residence",
						m.Owner(e), e, m.Part()))
				}
			}
		}
	}

	// Compiled boundary plans must agree across parts too (collective).
	checkPlans(dm, record)

	// Surface whether any rank failed so tests can assert collectively.
	anyErr := pcu.Allreduce(dm.Ctx, firstErr != nil, func(a, b bool) bool { return a || b })
	if firstErr == nil && anyErr {
		return errors.New("partition: a peer rank found distributed inconsistencies")
	}
	return firstErr
}
