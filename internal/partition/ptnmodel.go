package partition

import (
	"fmt"
	"sort"
	"strings"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// PtnEnt is a partition model entity P^d_i: the group of mesh entities
// sharing one residence part set. Its dimension follows the paper's
// structure for a mesh of dimension D: interior entities (one residence
// part) classify on a partition entity of dimension D; entities shared
// by n parts classify on dimension max(0, D-(n-1)) (e.g. in Fig 3/4 of
// the paper, the 2D mesh vertex on three parts classifies on a
// partition vertex, those on two parts on partition edges).
type PtnEnt struct {
	ID        int
	Dim       int
	Residence ds.IntSet
	Owner     int32
	// Count is the number of distinct mesh entities classified on this
	// partition entity (each counted once globally).
	Count int64
}

// PtnModel is the partition model of a distributed mesh.
type PtnModel struct {
	Ents []*PtnEnt
	// byKey maps a residence set key to its partition entity.
	byKey map[string]*PtnEnt
	dim   int
}

// Get returns the partition entity for a residence set, or nil.
func (pm *PtnModel) Get(res ds.IntSet) *PtnEnt { return pm.byKey[res.Key()] }

// Classify returns the partition model entity a mesh entity of the
// given part classifies on (its partition classification).
func (pm *PtnModel) Classify(m *mesh.Mesh, e mesh.Ent) *PtnEnt {
	return pm.byKey[m.Residence(e).Key()]
}

func (pm *PtnModel) String() string {
	var b strings.Builder
	for _, pe := range pm.Ents {
		fmt.Fprintf(&b, "P%d_%d res=%v owner=%d count=%d\n",
			pe.Dim, pe.ID, pe.Residence.Values(), pe.Owner, pe.Count)
	}
	return b.String()
}

// BuildPtnModel constructs the partition model of the distributed mesh
// (collective; every rank receives the same model). Counts tally each
// mesh entity once, at its owner.
func BuildPtnModel(dm *DMesh) *PtnModel {
	type classInfo struct {
		res   ds.IntSet
		count int64
	}
	local := map[string]*classInfo{}
	for _, part := range dm.Parts {
		m := part.M
		for d := 0; d <= dm.Dim; d++ {
			for e := range m.Iter(d) {
				if m.IsGhost(e) || !m.IsOwned(e) {
					continue
				}
				res := m.Residence(e)
				key := res.Key()
				ci := local[key]
				if ci == nil {
					ci = &classInfo{res: res}
					local[key] = ci
				}
				ci.count++
			}
		}
	}
	// Serialize local classes and gather them everywhere.
	var b pcu.Buffer
	keys := make([]string, 0, len(local))
	for k := range local {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.Int32(int32(len(keys)))
	for _, k := range keys {
		ci := local[k]
		b.Int32s(ci.res.Values())
		b.Int64(ci.count)
	}
	blobs := pcu.Allgather(dm.Ctx, b.Raw())
	merged := map[string]*classInfo{}
	for _, blob := range blobs {
		r := pcu.NewReader(blob)
		n := int(r.Int32())
		for i := 0; i < n; i++ {
			res := ds.NewIntSet(r.Int32s()...)
			count := r.Int64()
			key := res.Key()
			ci := merged[key]
			if ci == nil {
				ci = &classInfo{res: res}
				merged[key] = ci
			}
			ci.count += count
		}
		r.Done()
	}
	mkeys := make([]string, 0, len(merged))
	for k := range merged {
		mkeys = append(mkeys, k)
	}
	sort.Strings(mkeys)
	pm := &PtnModel{byKey: map[string]*PtnEnt{}, dim: dm.Dim}
	for i, k := range mkeys {
		ci := merged[k]
		d := dm.Dim - (ci.res.Len() - 1)
		if d < 0 {
			d = 0
		}
		pe := &PtnEnt{
			ID:        i,
			Dim:       d,
			Residence: ci.res,
			Owner:     ci.res.Min(),
			Count:     ci.count,
		}
		pm.Ents = append(pm.Ents, pe)
		pm.byKey[k] = pe
	}
	return pm
}
