package partition

import (
	"fmt"
	"sort"
	"time"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/vec"
)

// Ghosting localizes read-only copies of off-part elements adjacent to
// the part boundary, so that computations needing neighbor data (e.g.
// finite-volume gradients) avoid per-iteration communication. A ghost
// is a duplicated, read-only, off-part entity copy; ghosts do not enter
// residence sets or part boundaries, and are excluded from load
// statistics.

// Ghost adds `layers` layers of ghost elements to every part
// (collective). Bridge entities of dimension bridgeDim define
// adjacency: every element within `layers` bridge-adjacency steps of an
// entity shared with part q is copied to q. Newly created entities are
// flagged as ghosts; entities the receiver already holds are untouched.
// Element ghosts record their home part for tag synchronization.
func Ghost(dm *DMesh, bridgeDim, layers int) {
	t := dm.Ctx.Counters().Start("partition.ghost")
	defer t.Stop()
	dm.Ctx.Trace().Begin("partition.ghost")
	defer dm.Ctx.Trace().End("partition.ghost")
	if bridgeDim < 0 || bridgeDim >= dm.Dim {
		panic(fmt.Sprintf("partition: bad ghost bridge dimension %d", bridgeDim))
	}
	if layers < 1 {
		panic(fmt.Sprintf("partition: bad ghost layer count %d", layers))
	}
	d := dm.Dim
	ph := dm.beginPhase()
	for _, part := range dm.Parts {
		m := part.M
		// Seed: for each neighbor part q, the elements adjacent to
		// entities shared with q.
		seeds := map[int32]map[mesh.Ent]bool{}
		for e := range m.PartBoundary(bridgeDim) {
			for _, q := range m.RemoteParts(e) {
				set := seeds[q]
				if set == nil {
					set = map[mesh.Ent]bool{}
					seeds[q] = set
				}
				for _, el := range m.Adjacent(e, d) {
					if !m.IsGhost(el) {
						set[el] = true
					}
				}
			}
		}
		qs := make([]int32, 0, len(seeds))
		for q := range seeds {
			qs = append(qs, q)
		}
		sort.Slice(qs, func(a, b int) bool { return qs[a] < qs[b] })
		for _, q := range qs {
			set := seeds[q]
			// Expand by BFS over bridge adjacency for extra layers.
			frontier := set
			for l := 1; l < layers; l++ {
				next := map[mesh.Ent]bool{}
				for el := range frontier {
					for _, nb := range m.BridgeAdjacent(el, bridgeDim, d) {
						if !m.IsGhost(nb) && !set[nb] {
							set[nb] = true
							next[nb] = true
						}
					}
				}
				frontier = next
			}
			els := make([]mesh.Ent, 0, len(set))
			for el := range set {
				els = append(els, el)
			}
			sort.Slice(els, func(a, b int) bool { return els[a].Less(els[b]) })
			packGhosts(ph.to(m.Part(), q), part, els, d)
		}
	}
	for _, msg := range ph.exchange() {
		unpackGhosts(dm, msg)
	}

	// Back-links: each receiver tells the sender where its element
	// ghosts live, so owners can push tag data.
	ph = dm.beginPhase()
	for _, part := range dm.Parts {
		ghosts := make([]mesh.Ent, 0, len(part.ghostHome))
		for g := range part.ghostHome {
			ghosts = append(ghosts, g)
		}
		sort.Slice(ghosts, func(a, b int) bool { return ghosts[a].Less(ghosts[b]) })
		for _, g := range ghosts {
			home := part.ghostHome[g]
			b := ph.to(part.M.Part(), home.Part)
			b.Byte(byte(home.Ent.T))
			b.Int32(home.Ent.I)
			b.Byte(byte(g.T))
			b.Int32(g.I)
		}
	}
	for _, msg := range ph.exchange() {
		part := dm.LocalPart(msg.To)
		for !msg.Data.Empty() {
			mine := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
			ghost := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
			part.ghostsOf[mine] = append(part.ghostsOf[mine],
				mesh.RemoteCopyRef{Part: msg.From, Ent: ghost})
		}
	}
	for _, part := range dm.Parts {
		for e := range part.ghostsOf {
			sort.Slice(part.ghostsOf[e], func(a, b int) bool {
				return part.ghostsOf[e][a].Part < part.ghostsOf[e][b].Part
			})
		}
	}
	// ghostsOf/ghostHome changed without a mesh mutation on the sending
	// side, so the epoch vector alone cannot catch it: drop the plan.
	dm.ghostPlan = nil
}

// packGhosts encodes elements plus closures like migration but with
// owner info and the sender's element handle for back-linking.
func packGhosts(b *pcu.Buffer, part *Part, els []mesh.Ent, d int) {
	m := part.M
	movable := writeTagTable(b, m)
	closure := map[mesh.Ent]bool{}
	for _, el := range els {
		for dd := 0; dd < d; dd++ {
			for _, e := range m.Adjacent(el, dd) {
				closure[e] = true
			}
		}
	}
	var gids []int64 // down-adjacency gid scratch, bulk-packed per entity
	for dd := 0; dd <= d; dd++ {
		var level []mesh.Ent
		if dd == d {
			level = els
		} else {
			for e := range closure {
				if e.Dim() == dd {
					level = append(level, e)
				}
			}
			sort.Slice(level, func(a, b int) bool { return level[a].Less(level[b]) })
		}
		b.Int32(int32(len(level)))
		for _, e := range level {
			b.Byte(byte(e.T))
			b.Int64(part.Gid(e))
			c := m.Classification(e)
			b.Byte(byte(int8(c.Dim) + 1))
			b.Int32(c.Tag)
			b.Int32(m.Owner(e))
			if dd == 0 {
				p := m.Coord(e)
				b.Float64(p.X)
				b.Float64(p.Y)
				b.Float64(p.Z)
			} else {
				down := m.Down(e)
				gids = gids[:0]
				for _, de := range down {
					gids = append(gids, part.Gid(de))
				}
				b.Int64s(gids)
			}
			writeEntityTags(b, m, movable, e)
			if dd == d {
				// Sender handle for the back link.
				b.Byte(byte(e.T))
				b.Int32(e.I)
			}
		}
	}
}

func unpackGhosts(dm *DMesh, msg partMsg) {
	part := dm.LocalPart(msg.To)
	m := part.M
	d := dm.Dim
	r := msg.Data
	table := readTagTable(r, m)
	var gidScratch []int64 // down-adjacency gid decode scratch
	for dd := 0; dd <= d; dd++ {
		n := int(r.Int32())
		for k := 0; k < n; k++ {
			t := mesh.Type(r.Byte())
			gid := r.Int64()
			cls := readClassif(r)
			owner := r.Int32()
			var e mesh.Ent
			created := false
			if dd == 0 {
				x, y, z := r.Float64(), r.Float64(), r.Float64()
				var ok bool
				e, ok = part.FindGid(0, gid)
				if !ok {
					e = m.CreateVertex(cls, vec.V{X: x, Y: y, Z: z})
					part.setGid(e, gid)
					created = true
				}
			} else {
				gidScratch = r.AppendInt64s(gidScratch[:0])
				down := make([]mesh.Ent, len(gidScratch))
				for j, dg := range gidScratch {
					de, ok := part.FindGid(dd-1, dg)
					if !ok {
						panic(fmt.Sprintf("partition: ghost closure gid %d missing", dg))
					}
					down[j] = de
				}
				var ok bool
				e, ok = part.FindGid(dd, gid)
				if !ok {
					e = m.CreateEntity(t, cls, down)
					part.setGid(e, gid)
					created = true
				}
			}
			applyEntityTags(r, m, table, e, created)
			if created {
				m.SetGhost(e, true)
				m.SetOwner(e, owner)
				part.nGhosts++
			}
			if dd == d {
				home := mesh.Ent{T: mesh.Type(r.Byte()), I: r.Int32()}
				if created {
					part.ghostHome[e] = mesh.RemoteCopyRef{Part: msg.From, Ent: home}
				}
			}
		}
	}
	r.Done()
}

// RemoveGhosts deletes every ghost entity from all local parts
// (collective only in that all ranks typically do it together; purely
// local otherwise).
func RemoveGhosts(dm *DMesh) {
	dm.Ctx.Trace().Begin("partition.unghost")
	defer dm.Ctx.Trace().End("partition.unghost")
	// Ghosts are owned by their home part; destroying the local copies
	// is how ghosting ends, so sanctioned for the sanitizer.
	defer dm.suspendGuards()()
	for _, part := range dm.Parts {
		m := part.M
		// Elements first, then orphaned lower ghosts.
		var els []mesh.Ent
		for el := range m.Elements() {
			if m.IsGhost(el) {
				els = append(els, el)
			}
		}
		sort.Slice(els, func(a, b int) bool { return els[a].Less(els[b]) })
		for _, el := range els {
			m.Destroy(el)
		}
		for dd := dm.Dim - 1; dd >= 0; dd-- {
			var level []mesh.Ent
			for e := range m.Iter(dd) {
				if m.IsGhost(e) && !m.HasUp(e) {
					level = append(level, e)
				}
			}
			sort.Slice(level, func(a, b int) bool { return level[a].Less(level[b]) })
			for _, e := range level {
				m.Destroy(e)
			}
		}
		part.nGhosts = 0
		part.ghostHome = map[mesh.Ent]mesh.RemoteCopyRef{}
		part.ghostsOf = map[mesh.Ent][]mesh.RemoteCopyRef{}
	}
	dm.ghostPlan = nil
}

// ghostSyncPlan is the compiled home-to-ghost push schedule: per local
// part, CSR runs of home elements to send per peer and of local ghost
// entities to apply per peer, both in the home-part handle order both
// sides derive locally from their ghost bookkeeping (ghostsOf on the
// home side, ghostHome on the ghost side).
type ghostSyncPlan struct {
	epochs      []uint64
	parts       []partPlan
	returnRanks []int // see BoundaryPlan.returnRanks
}

// ghostSync returns the cached ghost push plan, recompiling it if the
// epoch vector moved (Ghost and RemoveGhosts also drop it explicitly,
// since they edit the ghost bookkeeping of parts whose meshes did not
// change).
func (dm *DMesh) ghostSync() *ghostSyncPlan {
	if pl := dm.ghostPlan; pl != nil && dm.epochsMatch(pl.epochs) {
		dm.Ctx.Counters().Add("partition.plan.hit", 1)
		return pl
	}
	dm.Ctx.Counters().Add("partition.plan.miss", 1)
	tr := dm.Ctx.Trace()
	tr.Begin("partition.plan")
	defer tr.End("partition.plan")
	start := time.Now()
	pl := &ghostSyncPlan{
		epochs: make([]uint64, 0, len(dm.Parts)),
		parts:  make([]partPlan, len(dm.Parts)),
	}
	var sends, recvs []planPair
	for li, part := range dm.Parts {
		sends, recvs = sends[:0], recvs[:0]
		for e, gs := range part.ghostsOf {
			for _, g := range gs {
				sends = append(sends, planPair{peer: g.Part, key: e, ent: e})
			}
		}
		for g, home := range part.ghostHome {
			recvs = append(recvs, planPair{peer: home.Part, key: home.Ent, ent: g})
		}
		pp := &pl.parts[li]
		pp.sendPeers, pp.sendOff, pp.sendEnts = buildCSR(sends)
		pp.recvPeers, pp.recvOff, pp.recvEnts = buildCSR(recvs)
	}
	pl.epochs = dm.recordEpochs(pl.epochs)
	pl.returnRanks = returnRanks(dm, pl.parts)
	dm.Ctx.Metrics().Histogram("partition.plan.compile.ns").Observe(dm.Ctx.Rank(), int64(time.Since(start)))
	dm.ghostPlan = pl
	return pl
}

// SyncGhostFloatTag pushes the owner's float tag values on elements to
// all their ghost copies (collective). The tag must exist on every part
// under the same name. Runs on the cached ghost plan: each planned
// entry is a presence byte plus the value, in the agreed order, with
// no per-entity addressing; the headered path remains the sanitizer
// fallback.
func SyncGhostFloatTag(dm *DMesh, name string) {
	if !planned() {
		syncGhostFloatTagHeadered(dm, name)
		return
	}
	pl := dm.ghostSync()
	ctx := dm.Ctx
	for li := range dm.Parts {
		part := dm.Parts[li]
		m := part.M
		tag := m.Tags.Find(name)
		if tag == nil {
			// No tag on this part: no sections. Receivers read only
			// what arrives, so silence is well-formed.
			continue
		}
		pp := &pl.parts[li]
		from := m.Part()
		for pi, q := range pp.sendPeers {
			b := ctx.To(dm.RankOf(q))
			b.Int32(from)
			b.Int32(q)
			for _, e := range pp.sendEnts[pp.sendOff[pi]:pp.sendOff[pi+1]] {
				if v, ok := m.Tags.GetFloat(tag, e); ok {
					b.Byte(1)
					b.Float64(v)
				} else {
					b.Byte(0)
				}
			}
		}
	}
	for _, r := range pl.returnRanks {
		ctx.To(r) // empty return message; see BoundaryPlan.returnRanks
	}
	// Applying the owner's values onto ghost copies is the sanctioned
	// owner-to-copy direction.
	defer dm.suspendGuards()()
	for _, msg := range ctx.Exchange() {
		for !msg.Data.Empty() {
			from := msg.Data.Int32()
			to := msg.Data.Int32()
			part := dm.LocalPart(to)
			m := part.M
			tag := m.Tags.Find(name)
			pp := &pl.parts[dm.localIndex(to)]
			j := pp.recvPeerIndex(from)
			if j < 0 {
				panic(fmt.Sprintf("partition: ghost plan on part %d expects nothing from part %d (stale plan?)", to, from))
			}
			for _, e := range pp.recvEnts[pp.recvOff[j]:pp.recvOff[j+1]] {
				if msg.Data.Byte() == 0 {
					continue
				}
				v := msg.Data.Float64()
				if tag != nil {
					m.Tags.SetFloat(tag, e, v)
				}
			}
		}
		msg.Data.Done()
	}
}

// syncGhostFloatTagHeadered is the self-describing fallback wire
// format, each record addressed by the ghost copy's (type, index).
func syncGhostFloatTagHeadered(dm *DMesh, name string) {
	ph := dm.beginPhase()
	for _, part := range dm.Parts {
		m := part.M
		tag := m.Tags.Find(name)
		if tag == nil {
			continue
		}
		ents := make([]mesh.Ent, 0, len(part.ghostsOf))
		for e := range part.ghostsOf {
			ents = append(ents, e)
		}
		sort.Slice(ents, func(a, b int) bool { return ents[a].Less(ents[b]) })
		for _, e := range ents {
			v, ok := m.Tags.GetFloat(tag, e)
			if !ok {
				continue
			}
			for _, g := range part.ghostsOf[e] {
				b := ph.to(m.Part(), g.Part)
				b.Byte(byte(g.Ent.T))
				b.Int32(g.Ent.I)
				b.Float64(v)
			}
		}
	}
	// Applying the owner's values onto ghost copies is the sanctioned
	// owner-to-copy direction.
	defer dm.suspendGuards()()
	for _, msg := range ph.exchange() {
		part := dm.LocalPart(msg.To)
		m := part.M
		tag := m.Tags.Find(name)
		for !msg.Data.Empty() {
			e := mesh.Ent{T: mesh.Type(msg.Data.Byte()), I: msg.Data.Int32()}
			v := msg.Data.Float64()
			if tag != nil {
				m.Tags.SetFloat(tag, e, v)
			}
		}
	}
}

func readClassif(r *pcu.Reader) (c gmi.Ref) {
	c.Dim = int8(r.Byte()) - 1
	c.Tag = r.Int32()
	return c
}

// NGhosts returns the number of ghost entities currently on the part.
func (p *Part) NGhosts() int { return p.nGhosts }

// GhostHome returns the home copy of a ghost element, if recorded.
func (p *Part) GhostHome(e mesh.Ent) (mesh.RemoteCopyRef, bool) {
	h, ok := p.ghostHome[e]
	return h, ok
}

// GhostCopies returns where an element of this part is ghosted, sorted
// by part.
func (p *Part) GhostCopies(e mesh.Ent) []mesh.RemoteCopyRef { return p.ghostsOf[e] }
