package gmi

import (
	"math"

	"github.com/fastmath/pumi-go/internal/vec"
)

// PointShape is the geometry of a model vertex.
type PointShape struct{ P vec.V }

// Closest returns the vertex position.
func (s PointShape) Closest(vec.V) vec.V { return s.P }

// SegmentShape is the geometry of a straight model edge.
type SegmentShape struct{ A, B vec.V }

// Closest projects p onto the segment.
func (s SegmentShape) Closest(p vec.V) vec.V {
	q, _ := vec.ClosestOnSegment(p, s.A, s.B)
	return q
}

// RectShape is the geometry of a planar rectangular model face: the
// point set O + u*U + v*V for u,v in [0,1].
type RectShape struct{ O, U, V vec.V }

// Closest projects p onto the plane and clamps to the rectangle.
func (s RectShape) Closest(p vec.V) vec.V {
	d := p.Sub(s.O)
	u := clamp01(d.Dot(s.U) / s.U.Norm2())
	v := clamp01(d.Dot(s.V) / s.V.Norm2())
	return s.O.Add(s.U.Scale(u)).Add(s.V.Scale(v))
}

func clamp01(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// Curve is a parametric space curve on t in [0, 1].
type Curve func(t float64) vec.V

// RadiusFn gives a tube's cross-section radius along its centerline.
type RadiusFn func(t float64) float64

// TubeWallShape is the lateral wall of a tube swept along a centerline
// with varying radius — the vessel wall of the AAA surrogate.
type TubeWallShape struct {
	Center Curve
	Radius RadiusFn
}

// Closest finds the nearest centerline parameter by sampled golden
// refinement and projects p radially onto the wall there.
func (s TubeWallShape) Closest(p vec.V) vec.V {
	t := nearestParam(s.Center, p)
	c := s.Center(t)
	// Radial direction orthogonal to the tangent.
	tan := tangent(s.Center, t)
	d := p.Sub(c)
	d = d.Sub(tan.Scale(d.Dot(tan)))
	if d.Norm() == 0 {
		// p on the centerline: any radial direction is valid; pick one
		// orthogonal to the tangent deterministically.
		d = arbitraryNormal(tan)
	}
	return c.Add(d.Unit().Scale(s.Radius(t)))
}

// DiskShape is a flat circular model face (a tube end cap).
type DiskShape struct {
	C vec.V // center
	N vec.V // unit normal
	R float64
}

// Closest projects p onto the disk's plane and clamps to its radius.
func (s DiskShape) Closest(p vec.V) vec.V {
	d := p.Sub(s.C)
	inPlane := d.Sub(s.N.Scale(d.Dot(s.N)))
	if r := inPlane.Norm(); r > s.R {
		inPlane = inPlane.Scale(s.R / r)
	}
	return s.C.Add(inPlane)
}

// CircleShape is a circular model edge (a tube rim).
type CircleShape struct {
	C vec.V
	N vec.V
	R float64
}

// Closest projects p onto the circle.
func (s CircleShape) Closest(p vec.V) vec.V {
	d := p.Sub(s.C)
	inPlane := d.Sub(s.N.Scale(d.Dot(s.N)))
	if inPlane.Norm() == 0 {
		inPlane = arbitraryNormal(s.N)
	}
	return s.C.Add(inPlane.Unit().Scale(s.R))
}

// nearestParam minimizes |curve(t) - p| over t in [0,1] with coarse
// sampling followed by ternary-search refinement of the best bracket.
func nearestParam(c Curve, p vec.V) float64 {
	const samples = 64
	best, bestD := 0.0, math.Inf(1)
	for i := 0; i <= samples; i++ {
		t := float64(i) / samples
		if d := c(t).Sub(p).Norm2(); d < bestD {
			best, bestD = t, d
		}
	}
	lo := math.Max(0, best-1.0/samples)
	hi := math.Min(1, best+1.0/samples)
	for iter := 0; iter < 40; iter++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if c(m1).Sub(p).Norm2() < c(m2).Sub(p).Norm2() {
			hi = m2
		} else {
			lo = m1
		}
	}
	return (lo + hi) / 2
}

func tangent(c Curve, t float64) vec.V {
	const h = 1e-5
	lo, hi := t-h, t+h
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return c(hi).Sub(c(lo)).Unit()
}

// arbitraryNormal returns a deterministic unit vector orthogonal to n.
func arbitraryNormal(n vec.V) vec.V {
	ref := vec.V{X: 1}
	if math.Abs(n.X) > 0.9 {
		ref = vec.V{Y: 1}
	}
	return n.Cross(ref).Unit()
}

// NormalShape is implemented by shapes that can report an outward (or
// consistently oriented) unit surface normal — the second kind of shape
// interrogation mesh-based analyses ask the geometric model for.
type NormalShape interface {
	Normal(p vec.V) vec.V
}

// Normal returns the rectangle's plane normal (orientation follows the
// U x V order of construction).
func (s RectShape) Normal(vec.V) vec.V { return s.U.Cross(s.V).Unit() }

// Normal returns the outward radial direction of the tube wall at the
// centerline parameter nearest to p.
func (s TubeWallShape) Normal(p vec.V) vec.V {
	t := nearestParam(s.Center, p)
	c := s.Center(t)
	tan := tangent(s.Center, t)
	d := p.Sub(c)
	d = d.Sub(tan.Scale(d.Dot(tan)))
	if d.Norm() == 0 {
		d = arbitraryNormal(tan)
	}
	return d.Unit()
}

// Normal returns the disk's plane normal.
func (s DiskShape) Normal(vec.V) vec.V { return s.N.Unit() }
