// Package gmi is the Geometric Model Interface: the high-level,
// mesh-independent definition of the domain as a non-manifold boundary
// representation. The mesh interacts with it through a functional
// interface supporting interrogation of model entity adjacencies and of
// the geometric shape of the entities, exactly the role the geometric
// model plays in PUMI's software structure.
//
// The paper's applications use CAD models (Parasolid/ACIS via Simmetrix);
// those kernels are unavailable here, so gmi provides analytic models
// with the same interface: a rectangle (2D), a box, a bent-tube "vessel"
// standing in for the abdominal aorta aneurysm model, and a swept wing
// box standing in for the ONERA M6 wing. Geometric classification of
// mesh entities against these models drives meshing and adaptation the
// same way CAD classification drives them in PUMI.
package gmi

import (
	"fmt"
	"sort"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/vec"
)

// Ref identifies a model entity by dimension and tag. It is the value
// mesh entities store as their geometric classification. The zero Ref
// is invalid (Dim -1 below is used for "unclassified").
type Ref struct {
	Dim int8
	Tag int32
}

// NoRef is the classification of an entity not yet classified.
var NoRef = Ref{Dim: -1}

// Valid reports whether r names a model entity.
func (r Ref) Valid() bool { return r.Dim >= 0 }

func (r Ref) String() string {
	if !r.Valid() {
		return "g(none)"
	}
	return fmt.Sprintf("g%dd#%d", r.Dim, r.Tag)
}

// Shape evaluates the geometry of one model entity.
type Shape interface {
	// Closest returns the point of the entity closest to p. Meshing
	// and adaptation use it to snap new boundary vertices onto the
	// true geometry.
	Closest(p vec.V) vec.V
}

// Entity is one topological entity of the model: a model vertex (0),
// edge (1), face (2) or region (3).
type Entity struct {
	Ref   Ref
	shape Shape
	up    []*Entity
	down  []*Entity
}

// Model is a non-manifold boundary representation: entities per
// dimension with bidirectional one-level adjacencies, plus a tag table
// for attaching user data to model entities.
type Model struct {
	ents  [4][]*Entity
	byTag [4]map[int32]*Entity
	// Tags attaches arbitrary user data to model entities.
	Tags *ds.TagTable[Ref]
	// Dim is the highest entity dimension present (2 or 3).
	Dim int
}

// New returns an empty model of the given dimension (2 or 3).
func New(dim int) *Model {
	m := &Model{Tags: ds.NewTagTable[Ref](), Dim: dim}
	for d := range m.byTag {
		m.byTag[d] = make(map[int32]*Entity)
	}
	return m
}

// Add creates a model entity of the given dimension and tag with the
// given shape (may be nil for interior regions), declaring its downward
// adjacent entities. It panics on duplicate tags or dimension mismatch,
// which indicate a malformed model definition.
func (m *Model) Add(dim int, tag int32, shape Shape, down ...*Entity) *Entity {
	if dim < 0 || dim > 3 {
		panic(fmt.Sprintf("gmi: bad dimension %d", dim))
	}
	if _, dup := m.byTag[dim][tag]; dup {
		panic(fmt.Sprintf("gmi: duplicate entity %dd#%d", dim, tag))
	}
	e := &Entity{Ref: Ref{Dim: int8(dim), Tag: tag}, shape: shape}
	for _, d := range down {
		if int(d.Ref.Dim) >= dim {
			panic(fmt.Sprintf("gmi: %v cannot bound %v", d.Ref, e.Ref))
		}
		e.down = append(e.down, d)
		d.up = append(d.up, e)
	}
	m.ents[dim] = append(m.ents[dim], e)
	m.byTag[dim][tag] = e
	return e
}

// Find returns the entity with the given dimension and tag, or nil.
func (m *Model) Find(dim int, tag int32) *Entity {
	if dim < 0 || dim > 3 {
		return nil
	}
	return m.byTag[dim][tag]
}

// Get resolves a Ref to its entity, or nil.
func (m *Model) Get(r Ref) *Entity { return m.Find(int(r.Dim), r.Tag) }

// Count returns the number of entities of the given dimension.
func (m *Model) Count(dim int) int { return len(m.ents[dim]) }

// Entities iterates the entities of one dimension in creation order.
func (m *Model) Entities(dim int) ds.Seq[*Entity] {
	return func(yield func(*Entity) bool) {
		for _, e := range m.ents[dim] {
			if !yield(e) {
				return
			}
		}
	}
}

// Adjacent returns the model entities of dimension dim adjacent to e.
// One-level up and down adjacencies are stored; multi-level queries
// traverse through intermediate dimensions, and the result is sorted by
// tag and deduplicated.
func (e *Entity) Adjacent(dim int) []*Entity {
	ed := int(e.Ref.Dim)
	if dim == ed {
		return nil
	}
	cur := []*Entity{e}
	step := func(ents []*Entity, up bool) []*Entity {
		seen := map[*Entity]bool{}
		var out []*Entity
		for _, x := range ents {
			adj := x.down
			if up {
				adj = x.up
			}
			for _, a := range adj {
				if !seen[a] {
					seen[a] = true
					out = append(out, a)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Ref.Tag < out[j].Ref.Tag })
		return out
	}
	for d := ed; d < dim; d++ {
		cur = step(cur, true)
	}
	for d := ed; d > dim; d-- {
		cur = step(cur, false)
	}
	return cur
}

// Closest returns the point of e's shape closest to p; entities without
// a shape (e.g. interior regions) return p unchanged.
func (e *Entity) Closest(p vec.V) vec.V {
	if e.shape == nil {
		return p
	}
	return e.shape.Closest(p)
}

// Snap projects p onto the model entity named by r; an invalid or
// unknown ref returns p unchanged.
func (m *Model) Snap(r Ref, p vec.V) vec.V {
	e := m.Get(r)
	if e == nil {
		return p
	}
	return e.Closest(p)
}

// CommonDown returns the highest-dimension model entity lying in the
// closure of every given entity (each ref's own entity counts as part
// of its closure). It returns NoRef if the closures are disjoint.
// Mesh generation uses it to classify mesh entities where several model
// boundary entities meet (e.g. a mesh edge on the rim where a tube wall
// meets an end cap).
func (m *Model) CommonDown(refs []Ref) Ref {
	if len(refs) == 0 {
		return NoRef
	}
	closure := func(r Ref) map[Ref]bool {
		e := m.Get(r)
		set := map[Ref]bool{}
		if e == nil {
			return set
		}
		set[r] = true
		for d := 0; d < int(r.Dim); d++ {
			for _, a := range e.Adjacent(d) {
				set[a.Ref] = true
			}
		}
		return set
	}
	common := closure(refs[0])
	for _, r := range refs[1:] {
		next := closure(r)
		for k := range common {
			if !next[k] {
				delete(common, k)
			}
		}
	}
	best := NoRef
	for r := range common {
		if r.Dim > best.Dim || (r.Dim == best.Dim && best.Valid() && r.Tag < best.Tag) {
			best = r
		}
	}
	return best
}

// CheckConsistency verifies the boundary representation: every entity of
// dimension > 0 has downward adjacencies, up/down links are symmetric,
// and refs resolve. It returns the first problem found.
func (m *Model) CheckConsistency() error {
	for d := 1; d <= 3; d++ {
		for _, e := range m.ents[d] {
			if len(e.down) == 0 {
				// A periodic-like face with no bounding edges is legal
				// in a non-manifold BRep (e.g. full cylinder wall), so
				// only regions strictly require closure.
				if d == 3 {
					return fmt.Errorf("gmi: region %v has no bounding faces", e.Ref)
				}
				continue
			}
			for _, dn := range e.down {
				found := false
				for _, up := range dn.up {
					if up == e {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("gmi: asymmetric adjacency %v <-> %v", e.Ref, dn.Ref)
				}
			}
		}
	}
	for d := 0; d <= 3; d++ {
		for tag, e := range m.byTag[d] {
			if e.Ref.Tag != tag || int(e.Ref.Dim) != d {
				return fmt.Errorf("gmi: tag index corrupt at %dd#%d", d, tag)
			}
		}
	}
	return nil
}

// NormalAt returns the unit surface normal of the model face named by r
// at (the closest point to) p; ok is false when r does not name a face
// with normal information.
func (m *Model) NormalAt(r Ref, p vec.V) (vec.V, bool) {
	e := m.Get(r)
	if e == nil || e.shape == nil {
		return vec.V{}, false
	}
	ns, ok := e.shape.(NormalShape)
	if !ok {
		return vec.V{}, false
	}
	return ns.Normal(p), true
}
