package gmi

import (
	"math"
	"testing"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/vec"
)

func TestRectModelTopology(t *testing.T) {
	m := Rect(2, 1)
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if m.Count(0) != 4 || m.Count(1) != 4 || m.Count(2) != 1 || m.Count(3) != 0 {
		t.Fatalf("counts = %d %d %d %d", m.Count(0), m.Count(1), m.Count(2), m.Count(3))
	}
	face := m.Find(2, 1)
	if got := face.Adjacent(1); len(got) != 4 {
		t.Fatalf("face has %d edges", len(got))
	}
	if got := face.Adjacent(0); len(got) != 4 {
		t.Fatalf("face has %d vertices (two-level)", len(got))
	}
	v := m.Find(0, 1)
	if got := v.Adjacent(2); len(got) != 1 || got[0] != face {
		t.Fatalf("vertex->face adjacency wrong: %v", got)
	}
	if got := v.Adjacent(1); len(got) != 2 {
		t.Fatalf("corner bounds %d edges", len(got))
	}
}

func TestRectClassifyPoint(t *testing.T) {
	m := Rect(2, 1)
	cases := []struct {
		p    vec.V
		want Ref
	}{
		{vec.V{X: 0, Y: 0}, Ref{0, 1}},
		{vec.V{X: 2, Y: 0}, Ref{0, 2}},
		{vec.V{X: 2, Y: 1}, Ref{0, 3}},
		{vec.V{X: 0, Y: 1}, Ref{0, 4}},
		{vec.V{X: 1, Y: 0}, Ref{1, 1}},
		{vec.V{X: 2, Y: 0.5}, Ref{1, 2}},
		{vec.V{X: 1, Y: 1}, Ref{1, 3}},
		{vec.V{X: 0, Y: 0.5}, Ref{1, 4}},
		{vec.V{X: 1, Y: 0.5}, Ref{2, 1}},
	}
	for _, c := range cases {
		if got := m.ClassifyPoint(c.p, 1e-9); got != c.want {
			t.Errorf("ClassifyPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBoxModelTopology(t *testing.T) {
	m := Box(1, 2, 3)
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if m.Count(0) != 8 || m.Count(1) != 12 || m.Count(2) != 6 || m.Count(3) != 1 {
		t.Fatalf("counts = %d %d %d %d", m.Count(0), m.Count(1), m.Count(2), m.Count(3))
	}
	rgn := m.Find(3, 1)
	if got := rgn.Adjacent(2); len(got) != 6 {
		t.Fatalf("region bounds %d faces", len(got))
	}
	if got := rgn.Adjacent(0); len(got) != 8 {
		t.Fatalf("region reaches %d vertices", len(got))
	}
	for e := range m.Entities(1) {
		if len(e.Adjacent(2)) != 2 {
			t.Fatalf("edge %v bounds %d faces, want 2", e.Ref, len(e.Adjacent(2)))
		}
		if len(e.Adjacent(0)) != 2 {
			t.Fatalf("edge %v has %d vertices", e.Ref, len(e.Adjacent(0)))
		}
	}
	for f := range m.Entities(2) {
		if len(f.Adjacent(1)) != 4 {
			t.Fatalf("face %v bounds %d edges", f.Ref, len(f.Adjacent(1)))
		}
	}
}

func TestBoxClassifyPoint(t *testing.T) {
	m := Box(1, 1, 1)
	// Interior.
	if got := m.ClassifyPoint(vec.V{X: 0.5, Y: 0.5, Z: 0.5}, 1e-9); got != (Ref{3, 1}) {
		t.Fatalf("interior = %v", got)
	}
	// Face x=0 is tag 1; z=1 is tag 6.
	if got := m.ClassifyPoint(vec.V{X: 0, Y: 0.5, Z: 0.5}, 1e-9); got != (Ref{2, 1}) {
		t.Fatalf("face = %v", got)
	}
	if got := m.ClassifyPoint(vec.V{X: 0.5, Y: 0.5, Z: 1}, 1e-9); got != (Ref{2, 6}) {
		t.Fatalf("face z=1 = %v", got)
	}
	// Edge between x=0 and y=0.
	e := m.ClassifyPoint(vec.V{X: 0, Y: 0, Z: 0.5}, 1e-9)
	if e.Dim != 1 {
		t.Fatalf("edge dim = %v", e)
	}
	// The classified edge must actually bound both faces.
	ent := m.Get(e)
	fs := ent.Adjacent(2)
	tags := map[int32]bool{}
	for _, f := range fs {
		tags[f.Ref.Tag] = true
	}
	if !tags[1] || !tags[3] {
		t.Fatalf("edge %v bounds faces %v", e, tags)
	}
	// Corner.
	c := m.ClassifyPoint(vec.V{X: 1, Y: 1, Z: 1}, 1e-9)
	if c.Dim != 0 {
		t.Fatalf("corner = %v", c)
	}
	if p := m.Get(c).Closest(vec.V{}); p.Dist(vec.V{X: 1, Y: 1, Z: 1}) > 1e-12 {
		t.Fatalf("corner shape at %v", p)
	}
}

func TestBoxSnap(t *testing.T) {
	m := Box(2, 2, 2)
	// Snapping to face x=0 projects X away and clamps into the face.
	got := m.Snap(Ref{2, 1}, vec.V{X: 0.7, Y: 1.0, Z: 1.5})
	if got.X != 0 || got.Y != 1.0 || got.Z != 1.5 {
		t.Fatalf("snap = %v", got)
	}
	// Out-of-rectangle points clamp.
	got = m.Snap(Ref{2, 1}, vec.V{X: -1, Y: 5, Z: -3})
	if got.X != 0 || got.Y != 2 || got.Z != 0 {
		t.Fatalf("clamped snap = %v", got)
	}
	// Unknown refs leave the point alone.
	p := vec.V{X: 9, Y: 9, Z: 9}
	if m.Snap(Ref{2, 99}, p) != p || m.Snap(NoRef, p) != p {
		t.Fatal("unknown ref moved the point")
	}
}

func TestVesselModel(t *testing.T) {
	m := Vessel(10, 1, 0.5, 1)
	if err := m.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if m.Count(2) != 3 || m.Count(1) != 2 || m.Count(3) != 1 {
		t.Fatalf("counts: %d faces %d edges", m.Count(2), m.Count(1))
	}
	// Radius bulges at the middle.
	if m.Radius(0.5) <= m.Radius(0.0) {
		t.Fatal("no bulge at t=0.5")
	}
	if math.Abs(m.Radius(0)-1) > 1e-3 {
		t.Fatalf("end radius = %g", m.Radius(0))
	}
	// A point far out radially snaps onto the wall at the local radius.
	c := m.Center(0.5)
	p := c.Add(vec.V{Z: 10})
	q := m.Snap(Ref{2, 1}, p)
	tHat := q.Sub(m.Center(0.5))
	if math.Abs(tHat.Norm()-m.Radius(0.5)) > 1e-2 {
		t.Fatalf("wall snap radius = %g, want %g", tHat.Norm(), m.Radius(0.5))
	}
	// Rim snapping lands on the rim circle.
	rim := m.Snap(Ref{1, 1}, vec.V{X: -3, Y: 0, Z: 0.2})
	if math.Abs(rim.Sub(m.Center(0)).Norm()-m.Radius(0)) > 1e-6 {
		t.Fatal("rim snap off circle")
	}
	// Cap snapping clamps to the disk.
	cp := m.Snap(Ref{2, 2}, m.Center(0).Add(vec.V{Y: 100}))
	if d := cp.Sub(m.Center(0)).Norm(); d > m.Radius(0)+1e-6 {
		t.Fatalf("cap snap outside disk: %g", d)
	}
}

func TestAdjacentSameDimAndTagTable(t *testing.T) {
	m := Box(1, 1, 1)
	f := m.Find(2, 1)
	if got := f.Adjacent(2); got != nil {
		t.Fatalf("same-dim adjacency = %v", got)
	}
	tag, err := m.Tags.Create("bc", ds.TagInt, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Tags.SetInt(tag, f.Ref, 42)
	if v, ok := m.Tags.GetInt(tag, f.Ref); !ok || v != 42 {
		t.Fatal("model tag round trip failed")
	}
}

func TestModelAddValidation(t *testing.T) {
	m := New(2)
	v := m.Add(0, 1, PointShape{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate tag accepted")
			}
		}()
		m.Add(0, 1, PointShape{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("downward adjacency of equal dim accepted")
			}
		}()
		m.Add(0, 2, PointShape{}, v)
	}()
}

func TestNormalAt(t *testing.T) {
	box := Box(1, 1, 1)
	// Face x=0 has normal along +x or -x depending on construction
	// order; it must be a unit +-X vector.
	n, ok := box.NormalAt(Ref{Dim: 2, Tag: 1}, vec.V{Y: 0.5, Z: 0.5})
	if !ok {
		t.Fatal("no normal on box face")
	}
	if math.Abs(math.Abs(n.X)-1) > 1e-12 || math.Abs(n.Y) > 1e-12 || math.Abs(n.Z) > 1e-12 {
		t.Fatalf("box face normal = %v", n)
	}
	// Vessel wall normal is radial: orthogonal to the centerline
	// tangent and pointing away from the axis.
	v := Vessel(10, 1, 0, 0) // straight tube for an exact check
	p := vec.V{X: 5, Y: 0, Z: 2}
	n, ok = v.NormalAt(Ref{Dim: 2, Tag: 1}, p)
	if !ok {
		t.Fatal("no normal on vessel wall")
	}
	if math.Abs(n.Z-1) > 1e-6 || math.Abs(n.X) > 1e-6 {
		t.Fatalf("wall normal = %v", n)
	}
	// Edges and unknown refs have no normals.
	if _, ok := box.NormalAt(Ref{Dim: 1, Tag: 1}, p); ok {
		t.Fatal("edge reported a normal")
	}
	if _, ok := box.NormalAt(Ref{Dim: 2, Tag: 99}, p); ok {
		t.Fatal("unknown face reported a normal")
	}
	// Vessel caps are disks with axis normals.
	n, ok = v.NormalAt(Ref{Dim: 2, Tag: 2}, vec.V{})
	if !ok || math.Abs(math.Abs(n.X)-1) > 1e-6 {
		t.Fatalf("cap normal = %v ok=%v", n, ok)
	}
}
