package gmi

import (
	"math"

	"github.com/fastmath/pumi-go/internal/vec"
)

// RectModel is the 2D rectangle domain [0,Lx] x [0,Ly] at z = 0:
// one model face, four model edges, four model vertices. Edge tags:
// 1 bottom (y=0), 2 right (x=Lx), 3 top (y=Ly), 4 left (x=0); vertex
// tags 1..4 counterclockwise from the origin; face tag 1.
type RectModel struct {
	*Model
	Lx, Ly float64
}

// Rect builds the rectangle model.
func Rect(lx, ly float64) *RectModel {
	m := New(2)
	corner := []vec.V{{}, {X: lx}, {X: lx, Y: ly}, {Y: ly}}
	var vs [4]*Entity
	for i, p := range corner {
		vs[i] = m.Add(0, int32(i+1), PointShape{P: p})
	}
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	var es [4]*Entity
	for i, e := range edges {
		es[i] = m.Add(1, int32(i+1),
			SegmentShape{A: corner[e[0]], B: corner[e[1]]}, vs[e[0]], vs[e[1]])
	}
	m.Add(2, 1, RectShape{O: vec.V{}, U: vec.V{X: lx}, V: vec.V{Y: ly}},
		es[0], es[1], es[2], es[3])
	return &RectModel{Model: m, Lx: lx, Ly: ly}
}

// ClassifyPoint returns the model entity a rectangle-boundary-exact
// point lies on: vertex, edge, or interior face.
func (m *RectModel) ClassifyPoint(p vec.V, tol float64) Ref {
	onX0 := math.Abs(p.X) <= tol
	onX1 := math.Abs(p.X-m.Lx) <= tol
	onY0 := math.Abs(p.Y) <= tol
	onY1 := math.Abs(p.Y-m.Ly) <= tol
	switch {
	case onX0 && onY0:
		return Ref{Dim: 0, Tag: 1}
	case onX1 && onY0:
		return Ref{Dim: 0, Tag: 2}
	case onX1 && onY1:
		return Ref{Dim: 0, Tag: 3}
	case onX0 && onY1:
		return Ref{Dim: 0, Tag: 4}
	case onY0:
		return Ref{Dim: 1, Tag: 1}
	case onX1:
		return Ref{Dim: 1, Tag: 2}
	case onY1:
		return Ref{Dim: 1, Tag: 3}
	case onX0:
		return Ref{Dim: 1, Tag: 4}
	}
	return Ref{Dim: 2, Tag: 1}
}

// BoxModel is the 3D box domain [0,Lx] x [0,Ly] x [0,Lz]: one model
// region (tag 1), six faces, twelve edges, eight vertices. Face tags:
// 1 x=0, 2 x=Lx, 3 y=0, 4 y=Ly, 5 z=0, 6 z=Lz. Edge and vertex tags
// are derived from the faces they bound.
type BoxModel struct {
	*Model
	Lx, Ly, Lz float64
	edgeByPair map[[2]int32]*Entity
	vertByTrip map[[3]int32]*Entity
}

// Box builds the box model.
func Box(lx, ly, lz float64) *BoxModel {
	m := &BoxModel{
		Model: New(3), Lx: lx, Ly: ly, Lz: lz,
		edgeByPair: map[[2]int32]*Entity{},
		vertByTrip: map[[3]int32]*Entity{},
	}
	bounds := [3][2]float64{{0, lx}, {0, ly}, {0, lz}}
	// faceTag(axis, side): axis 0..2, side 0..1 -> 1..6.
	faceTag := func(axis, side int) int32 { return int32(2*axis + side + 1) }

	// Vertices: all sign combinations; tag from the face triple.
	var vertTag int32
	for sx := 0; sx < 2; sx++ {
		for sy := 0; sy < 2; sy++ {
			for sz := 0; sz < 2; sz++ {
				vertTag++
				p := vec.V{X: bounds[0][sx], Y: bounds[1][sy], Z: bounds[2][sz]}
				v := m.Add(0, vertTag, PointShape{P: p})
				trip := [3]int32{faceTag(0, sx), faceTag(1, sy), faceTag(2, sz)}
				m.vertByTrip[trip] = v
			}
		}
	}
	vertAt := func(sx, sy, sz int) *Entity {
		return m.vertByTrip[[3]int32{faceTag(0, sx), faceTag(1, sy), faceTag(2, sz)}]
	}
	// Edges: for each axis, 4 edges varying that axis.
	var edgeTag int32
	addEdge := func(a, b *Entity, f1, f2 int32) *Entity {
		edgeTag++
		pa := a.shape.(PointShape).P
		pb := b.shape.(PointShape).P
		e := m.Add(1, edgeTag, SegmentShape{A: pa, B: pb}, a, b)
		key := [2]int32{f1, f2}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		m.edgeByPair[key] = e
		return e
	}
	for s1 := 0; s1 < 2; s1++ {
		for s2 := 0; s2 < 2; s2++ {
			addEdge(vertAt(0, s1, s2), vertAt(1, s1, s2), faceTag(1, s1), faceTag(2, s2)) // x-varying
			addEdge(vertAt(s1, 0, s2), vertAt(s1, 1, s2), faceTag(0, s1), faceTag(2, s2)) // y-varying
			addEdge(vertAt(s1, s2, 0), vertAt(s1, s2, 1), faceTag(0, s1), faceTag(1, s2)) // z-varying
		}
	}
	// Faces: one per (axis, side), bounded by the four edges sharing it.
	axes := [3][2]int{{1, 2}, {0, 2}, {0, 1}} // the two varying axes per face normal axis
	for axis := 0; axis < 3; axis++ {
		for side := 0; side < 2; side++ {
			ft := faceTag(axis, side)
			a1, a2 := axes[axis][0], axes[axis][1]
			var down []*Entity
			for _, other := range []int{a1, a2} {
				for s := 0; s < 2; s++ {
					key := [2]int32{ft, faceTag(other, s)}
					if key[0] > key[1] {
						key[0], key[1] = key[1], key[0]
					}
					down = append(down, m.edgeByPair[key])
				}
			}
			o := vec.V{}
			o = o.WithComp(axis, bounds[axis][side])
			u := vec.V{}
			u = u.WithComp(a1, bounds[a1][1])
			v := vec.V{}
			v = v.WithComp(a2, bounds[a2][1])
			m.Add(2, ft, RectShape{O: o, U: u, V: v}, down...)
		}
	}
	var faces []*Entity
	for _, f := range m.ents[2] {
		faces = append(faces, f)
	}
	m.Add(3, 1, nil, faces...)
	return m
}

// ClassifyPoint returns the model entity a box-boundary-exact point
// lies on: vertex, edge, face, or the interior region.
func (m *BoxModel) ClassifyPoint(p vec.V, tol float64) Ref {
	var hit []int32
	check := func(coord, lo, hi float64, axis int) {
		if math.Abs(coord-lo) <= tol {
			hit = append(hit, int32(2*axis+1))
		} else if math.Abs(coord-hi) <= tol {
			hit = append(hit, int32(2*axis+2))
		}
	}
	check(p.X, 0, m.Lx, 0)
	check(p.Y, 0, m.Ly, 1)
	check(p.Z, 0, m.Lz, 2)
	switch len(hit) {
	case 0:
		return Ref{Dim: 3, Tag: 1}
	case 1:
		return Ref{Dim: 2, Tag: hit[0]}
	case 2:
		key := [2]int32{hit[0], hit[1]}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		return m.edgeByPair[key].Ref
	default:
		return m.vertByTrip[[3]int32{hit[0], hit[1], hit[2]}].Ref
	}
}

// Wing returns a box-shaped wing surrogate: span along x, chord along
// y, thickness along z. The shock-adaptation experiment (Fig 13 of the
// paper) resolves a planar front across this domain.
func Wing(span, chord, thick float64) *BoxModel { return Box(span, chord, thick) }

// VesselModel is the bent-tube surrogate for the paper's abdominal
// aorta aneurysm (AAA) model: a tube swept along a curved centerline
// whose radius bulges near the middle (the aneurysm). Model entities:
// region 1; faces: 1 wall, 2 inlet cap (t=0), 3 outlet cap (t=1);
// edges: 1 inlet rim, 2 outlet rim.
type VesselModel struct {
	*Model
	// Length is the centerline extent along x.
	Length float64
	// R0 is the nominal tube radius; Bulge the fractional radius
	// increase at the aneurysm; BulgeAt/BulgeWidth its center and
	// width in centerline parameter space; Bend the lateral centerline
	// deflection.
	R0, Bulge, BulgeAt, BulgeWidth, Bend float64
}

// Vessel builds the AAA-surrogate model.
func Vessel(length, r0, bulge, bend float64) *VesselModel {
	m := &VesselModel{
		Model: New(3), Length: length,
		R0: r0, Bulge: bulge, BulgeAt: 0.5, BulgeWidth: 0.15, Bend: bend,
	}
	center := m.Center
	radius := m.Radius
	n0 := tangent(center, 0)
	n1 := tangent(center, 1)
	rim0 := m.Add(1, 1, CircleShape{C: center(0), N: n0, R: radius(0)})
	rim1 := m.Add(1, 2, CircleShape{C: center(1), N: n1, R: radius(1)})
	wall := m.Add(2, 1, TubeWallShape{Center: center, Radius: radius}, rim0, rim1)
	cap0 := m.Add(2, 2, DiskShape{C: center(0), N: n0, R: radius(0)}, rim0)
	cap1 := m.Add(2, 3, DiskShape{C: center(1), N: n1, R: radius(1)}, rim1)
	m.Add(3, 1, nil, wall, cap0, cap1)
	return m
}

// Center evaluates the vessel centerline at parameter t in [0,1].
func (m *VesselModel) Center(t float64) vec.V {
	return vec.V{X: m.Length * t, Y: m.Bend * math.Sin(math.Pi*t)}
}

// Radius evaluates the vessel cross-section radius at parameter t.
func (m *VesselModel) Radius(t float64) float64 {
	d := (t - m.BulgeAt) / m.BulgeWidth
	return m.R0 * (1 + m.Bulge*math.Exp(-d*d))
}

// Frame returns an orthonormal frame at centerline parameter t: the
// tangent T and two normals N1, N2 spanning the cross-section plane.
// The frame varies smoothly with t for the in-plane centerlines Vessel
// uses, so structured cross-section grids stay untwisted.
func (m *VesselModel) Frame(t float64) (T, N1, N2 vec.V) {
	T = tangent(m.Center, t)
	up := vec.V{Z: 1}
	N1 = up.Cross(T).Unit()
	if N1.Norm() == 0 {
		N1 = vec.V{Y: 1}
	}
	N2 = T.Cross(N1).Unit()
	return T, N1, N2
}
