// Package vec provides the small fixed-size linear algebra used by the
// geometric model, mesh coordinates, partitioners and adaptation: 3-vectors
// and a few closed-form helpers. Everything is a value type; no allocation.
package vec

import "math"

// V is a point or vector in R^3. 2D meshes simply keep Z = 0.
type V struct{ X, Y, Z float64 }

// Add returns a + b.
func (a V) Add(b V) V { return V{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V) Sub(b V) V { return V{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s * a.
func (a V) Scale(s float64) V { return V{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the inner product.
func (a V) Dot(b V) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a x b.
func (a V) Cross(b V) V {
	return V{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns the Euclidean length.
func (a V) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Norm2 returns the squared length.
func (a V) Norm2() float64 { return a.Dot(a) }

// Dist returns |a - b|.
func (a V) Dist(b V) float64 { return a.Sub(b).Norm() }

// Unit returns a / |a|; the zero vector is returned unchanged.
func (a V) Unit() V {
	n := a.Norm()
	if n == 0 {
		return a
	}
	return a.Scale(1 / n)
}

// Lerp returns a + t*(b-a).
func Lerp(a, b V, t float64) V { return a.Add(b.Sub(a).Scale(t)) }

// Mid returns the midpoint of a and b.
func Mid(a, b V) V { return Lerp(a, b, 0.5) }

// Comp returns the i-th component (0=X, 1=Y, 2=Z).
func (a V) Comp(i int) float64 {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	default:
		return a.Z
	}
}

// WithComp returns a copy with the i-th component set to v.
func (a V) WithComp(i int, v float64) V {
	switch i {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	default:
		a.Z = v
	}
	return a
}

// TetVolume returns the signed volume of the tetrahedron (a,b,c,d):
// positive when d lies on the side of the plane (a,b,c) that the
// right-hand normal points to.
func TetVolume(a, b, c, d V) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a)) / 6
}

// TriArea returns the (unsigned) area of triangle (a,b,c).
func TriArea(a, b, c V) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Norm() / 2
}

// TriNormal returns the unit normal of triangle (a,b,c).
func TriNormal(a, b, c V) V {
	return b.Sub(a).Cross(c.Sub(a)).Unit()
}

// Centroid returns the average of the given points.
func Centroid(pts ...V) V {
	var s V
	for _, p := range pts {
		s = s.Add(p)
	}
	return s.Scale(1 / float64(len(pts)))
}

// ClosestOnSegment returns the closest point to p on segment [a, b] and
// the parameter t in [0,1] such that the point equals Lerp(a,b,t).
func ClosestOnSegment(p, a, b V) (V, float64) {
	ab := b.Sub(a)
	den := ab.Norm2()
	if den == 0 {
		return a, 0
	}
	t := p.Sub(a).Dot(ab) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Lerp(a, b, t), t
}
