package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestArithmetic(t *testing.T) {
	a := V{1, 2, 3}
	b := V{4, 5, 6}
	if a.Add(b) != (V{5, 7, 9}) {
		t.Fatal("Add")
	}
	if b.Sub(a) != (V{3, 3, 3}) {
		t.Fatal("Sub")
	}
	if a.Scale(2) != (V{2, 4, 6}) {
		t.Fatal("Scale")
	}
	if !close(a.Dot(b), 32) {
		t.Fatal("Dot")
	}
	if a.Cross(b) != (V{-3, 6, -3}) {
		t.Fatal("Cross")
	}
	if !close(V{3, 4, 0}.Norm(), 5) {
		t.Fatal("Norm")
	}
	if !close(V{3, 4, 0}.Dist(V{0, 0, 0}), 5) {
		t.Fatal("Dist")
	}
	if u := (V{0, 0, 2}).Unit(); u != (V{0, 0, 1}) {
		t.Fatal("Unit")
	}
	if z := (V{}).Unit(); z != (V{}) {
		t.Fatal("Unit of zero changed value")
	}
}

func TestCompAccess(t *testing.T) {
	v := V{1, 2, 3}
	for i, want := range []float64{1, 2, 3} {
		if v.Comp(i) != want {
			t.Fatalf("Comp(%d)", i)
		}
	}
	if v.WithComp(1, 9) != (V{1, 9, 3}) {
		t.Fatal("WithComp")
	}
	if v != (V{1, 2, 3}) {
		t.Fatal("WithComp mutated receiver")
	}
}

func TestLerpMidCentroid(t *testing.T) {
	a, b := V{0, 0, 0}, V{2, 4, 6}
	if Lerp(a, b, 0.25) != (V{0.5, 1, 1.5}) {
		t.Fatal("Lerp")
	}
	if Mid(a, b) != (V{1, 2, 3}) {
		t.Fatal("Mid")
	}
	if Centroid(a, b, V{4, 2, 0}) != (V{2, 2, 2}) {
		t.Fatal("Centroid")
	}
}

func TestTetVolumeOrientation(t *testing.T) {
	a, b, c := V{0, 0, 0}, V{1, 0, 0}, V{0, 1, 0}
	dUp := V{0, 0, 1}
	if v := TetVolume(a, b, c, dUp); !close(v, 1.0/6) {
		t.Fatalf("vol = %g", v)
	}
	if v := TetVolume(a, c, b, dUp); !close(v, -1.0/6) {
		t.Fatalf("flipped vol = %g", v)
	}
}

func TestTriAreaNormal(t *testing.T) {
	a, b, c := V{0, 0, 0}, V{2, 0, 0}, V{0, 2, 0}
	if !close(TriArea(a, b, c), 2) {
		t.Fatal("TriArea")
	}
	if TriNormal(a, b, c) != (V{0, 0, 1}) {
		t.Fatal("TriNormal")
	}
}

func TestClosestOnSegment(t *testing.T) {
	a, b := V{0, 0, 0}, V{10, 0, 0}
	q, s := ClosestOnSegment(V{3, 5, 0}, a, b)
	if q != (V{3, 0, 0}) || !close(s, 0.3) {
		t.Fatalf("q=%v s=%g", q, s)
	}
	q, s = ClosestOnSegment(V{-5, 1, 0}, a, b)
	if q != a || s != 0 {
		t.Fatal("clamp low")
	}
	q, s = ClosestOnSegment(V{99, 1, 0}, a, b)
	if q != b || s != 1 {
		t.Fatal("clamp high")
	}
	// Degenerate segment.
	q, s = ClosestOnSegment(V{1, 1, 1}, a, a)
	if q != a || s != 0 {
		t.Fatal("degenerate")
	}
}

// Property: the cross product is orthogonal to both inputs.
func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V{clampf(ax), clampf(ay), clampf(az)}
		b := V{clampf(bx), clampf(by), clampf(bz)}
		c := a.Cross(b)
		scale := a.Norm()*b.Norm() + 1
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clampf(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	return math.Mod(v, 1e6)
}
