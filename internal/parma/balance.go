package parma

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// Config controls the multi-criteria partition improvement.
type Config struct {
	// Tolerance is the target peak imbalance (max/mean), e.g. 1.05 for
	// the paper's 5%.
	Tolerance float64
	// MaxIters bounds the diffusion iterations per entity type.
	MaxIters int
	// Log, when non-nil, receives per-iteration progress lines
	// (rank 0 only).
	Log io.Writer
	// NaiveSelection disables the Fig 9/10 boundary-shape cavity
	// ordering, selecting boundary cavities in arbitrary (but
	// deterministic) order instead. Exists for the ablation benchmark;
	// production callers leave it false.
	NaiveSelection bool
	// OnIter, when non-nil, is called after every completed migration
	// iteration with the dimension being balanced and the iteration
	// index — the checkpoint hook for restartable improvement runs. It
	// is collective: every rank calls it at the same point and it must
	// return the same decision on every rank (meshio.SaveCheckpoint
	// already behaves this way). A non-nil error aborts balancing.
	OnIter func(dm *partition.DMesh, dim, iter int) error
}

// DefaultConfig matches the paper's tests: 5% tolerance.
func DefaultConfig() Config {
	return Config{Tolerance: 1.05, MaxIters: 100}
}

// LevelResult records the outcome of balancing one entity dimension.
type LevelResult struct {
	Dim           int
	Iters         int
	Before, After float64 // peak imbalance max/mean
	MeanBefore    float64
	MeanAfter     float64
}

// Result summarizes a Balance run.
type Result struct {
	Priority Priority
	Levels   []LevelResult
	Elapsed  time.Duration
}

// Balance runs ParMA multi-criteria partition improvement on the
// distributed mesh (collective). The priority list is traversed in
// decreasing priority; for each entity type the migration schedule is
// computed, elements are selected with the adjacency-based rules of
// SelectCavities, and the cavities are migrated — one iteration — until
// the imbalance meets cfg.Tolerance or cfg.MaxIters is reached.
// Balancing a type never knowingly pushes a higher-priority type past
// tolerance on any destination part.
func Balance(dm *partition.DMesh, pri Priority, cfg Config) Result {
	res, err := BalanceSafe(dm, pri, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// BalanceSafe is Balance with migration faults surfaced as an error
// instead of a panic: an aborted migration (partition.ErrMigrateAborted)
// or a failing OnIter hook stops balancing on every rank and returns the
// same error everywhere, leaving the mesh in its last consistent state —
// the state of the most recent completed iteration. The partial Result
// accompanies the error.
func BalanceSafe(dm *partition.DMesh, pri Priority, cfg Config) (Result, error) {
	t := dm.Ctx.Counters().Start("parma.balance")
	defer t.Stop()
	dm.Ctx.Trace().Begin("parma.balance")
	defer dm.Ctx.Trace().End("parma.balance")
	start := time.Now()
	defer func() {
		dm.Ctx.Metrics().Histogram("parma.balance.ns").Observe(dm.Ctx.Rank(), int64(time.Since(start)))
	}()
	res := Result{Priority: pri}
	for li, level := range pri {
		for _, t := range level {
			lr, err := balanceDim(dm, pri, li, t, cfg)
			res.Levels = append(res.Levels, lr)
			if err != nil {
				res.Elapsed = time.Since(start)
				return res, err
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func balanceDim(dm *partition.DMesh, pri Priority, li, t int, cfg Config) (LevelResult, error) {
	lr := LevelResult{Dim: t}
	tr := dm.Ctx.Trace()
	// Metered runs record each iteration's duration and publish the
	// allreduced imbalance as a live gauge; handles are nil (no-op) for
	// unmetered runs.
	iterNs := dm.Ctx.Metrics().Histogram("parma.iter.ns")
	imbGauge := dm.Ctx.Metrics().Gauge("parma.imbalance")
	higher := pri.guarded(li, t)
	best := 0.0
	stale := 0
	// Diffusion can plateau for roughly a graph diameter of
	// iterations while load percolates across parts before the peak
	// drops, so the stagnation window scales with the part count.
	staleLimit := dm.NParts()
	if staleLimit < 10 {
		staleLimit = 10
	}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		counts := gatherAll(dm)
		mean, imb := partition.Imbalance(counts[t])
		// Every rank records the same allreduced imbalance, so the
		// summary's imbalance-vs-iteration series can come from any rank.
		tr.ParmaIter(t, iter, imb)
		imbGauge.Set(dm.Ctx.Rank(), imb)
		if iter == 0 {
			lr.Before, lr.MeanBefore = imb, mean
			best = imb
		}
		lr.After, lr.MeanAfter = imb, mean
		if cfg.Log != nil && dm.Ctx.Rank() == 0 {
			fmt.Fprintf(cfg.Log, "parma: dim %d iter %d imb %.4f mean %.1f\n", t, iter, imb, mean)
		}
		if imb <= cfg.Tolerance {
			lr.Iters = iter
			return lr, nil
		}
		// Stagnation cutoff: diffusion that keeps moving elements
		// without lowering the peak for several iterations is
		// oscillating at its limit; stop rather than churn.
		if imb < best-1e-9 {
			best = imb
			stale = 0
		} else {
			stale++
			if stale >= staleLimit {
				lr.Iters = iter
				break
			}
		}
		// The iteration span covers plan construction, migration and the
		// checkpoint hook; its args carry the dimension, iteration index
		// and the imbalance the iteration set out to fix.
		iterStart := time.Now()
		tr.BeginArgs("parma.iter", int64(t), int64(iter), imb)
		endIter := func() {
			tr.End("parma.iter")
			iterNs.Observe(dm.Ctx.Rank(), int64(time.Since(iterStart)))
		}
		plans := buildPlans(dm, counts, t, higher, pri, li, cfg)
		moved := int64(0)
		for _, p := range plans {
			moved += int64(len(p))
		}
		totalMoved := sumAcross(dm, moved)
		if err := partition.TryMigrate(dm, plans); err != nil {
			endIter()
			lr.Iters = iter
			return lr, err
		}
		lr.Iters = iter + 1
		if cfg.OnIter != nil {
			if err := cfg.OnIter(dm, t, iter); err != nil {
				endIter()
				return lr, err
			}
		}
		endIter()
		if totalMoved == 0 {
			// Diffusion stalled; no point iterating further.
			break
		}
	}
	counts := gatherAll(dm)
	lr.MeanAfter, lr.After = 0, 0
	lr.MeanAfter, lr.After = partition.Imbalance(counts[t])
	return lr, nil
}

func sumAcross(dm *partition.DMesh, v int64) int64 {
	return pcu.SumInt64(dm.Ctx, v)
}

// buildPlans computes this iteration's migration schedule: every
// locally heavy part sheds cavities to lightly loaded neighbor
// candidates.
func buildPlans(dm *partition.DMesh, counts [4][]int64, t int, higher []int, pri Priority, li int, cfg Config) []partition.Plan {
	avg := make([]float64, 4)
	var maxCount [4]int64
	for d := 0; d <= dm.Dim; d++ {
		avg[d], _ = partition.Imbalance(counts[d])
		for _, c := range counts[d] {
			if c > maxCount[d] {
				maxCount[d] = c
			}
		}
	}
	plans := make([]partition.Plan, len(dm.Parts))
	// Projected arrivals this iteration, shared across local parts so
	// two local heavy parts don't overload the same candidate.
	arrivals := map[int32]*[4]int64{}
	arr := func(q int32) *[4]int64 {
		a := arrivals[q]
		if a == nil {
			a = &[4]int64{}
			arrivals[q] = a
		}
		return a
	}
	// Lesser-priority dims: every dim processed after t.
	dims := pri.Dims()
	var lesser []int
	seenT := false
	for _, d := range dims {
		if d == t {
			seenT = true
			continue
		}
		if seenT {
			lesser = append(lesser, d)
		}
	}

	for i, part := range dm.Parts {
		m := part.M
		self := m.Part()
		plans[i] = partition.Plan{}
		myCount := counts[t][self]
		if float64(myCount) <= cfg.Tolerance*avg[t] {
			continue // not heavily loaded
		}
		need := float64(myCount) - avg[t]
		// Candidate parts: neighbors lightly loaded for t and for all
		// lesser-priority dims (absolutely or relatively).
		candidates := map[int32]bool{}
		for _, q := range m.NeighborParts(0) {
			ok := lightlyLoaded(counts, avg, t, q, self)
			for _, l := range lesser {
				if !lightlyLoaded(counts, avg, l, q, self) {
					ok = false
					break
				}
			}
			if ok {
				candidates[q] = true
			}
		}
		if len(candidates) == 0 {
			continue
		}
		leaving := map[mesh.Ent]bool{}
		cavities := SelectCavities(m, t)
		if cfg.NaiveSelection {
			// Ablation: drop the shape-based preference, keep only the
			// anchor order.
			sort.SliceStable(cavities, func(a, b int) bool {
				return cavities[a].Anchor.Less(cavities[b].Anchor)
			})
		}
		for _, cav := range cavities {
			if need <= 0 {
				break
			}
			// Skip cavities overlapping already-planned elements.
			overlap := false
			for _, el := range cav.Els {
				if leaving[el] {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			// Destination: a candidate part sharing the anchor. A
			// destination may fill up to the pairwise equalization
			// point with the sender, so diffusion keeps a gradient
			// flowing outward across relatively light neighbors.
			var dest int32 = -1
			var destLoad int64
			for _, q := range m.RemoteParts(cav.Anchor) {
				if !candidates[q] {
					continue
				}
				load := counts[t][q] + arr(q)[t]
				pairCap := (float64(myCount) + float64(counts[t][q])) / 2
				if float64(load) >= pairCap {
					continue // destination filled for this iteration
				}
				if dest < 0 || load < destLoad {
					dest = q
					destLoad = load
				}
			}
			if dest < 0 {
				continue
			}
			// Guard: the arrivals must not increase the imbalance of a
			// higher- or equal-priority dim — the destination may fill
			// up to tolerance or to the current global peak, whichever
			// is higher (the paper requires the guarded imbalance "is
			// not increased", not that it is already met).
			cc := closureCounts(m, cav.Els)
			blocked := false
			for _, h := range higher {
				limit := cfg.Tolerance * avg[h]
				if float64(maxCount[h]) > limit {
					limit = float64(maxCount[h])
				}
				proj := counts[h][dest] + arr(dest)[h] + int64(cc[h])
				if float64(proj) > limit {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			// Exact marginal reduction of dim t on this part.
			for _, el := range cav.Els {
				leaving[el] = true
			}
			red := leavingCount(m, cav.Els, leaving, t)
			if red <= 0 && t != dm.Dim {
				// No reduction; undo.
				for _, el := range cav.Els {
					delete(leaving, el)
				}
				continue
			}
			for _, el := range cav.Els {
				plans[i][el] = dest
			}
			a := arr(dest)
			for d := 0; d <= dm.Dim; d++ {
				a[d] += int64(cc[d])
			}
			need -= float64(red)
		}
	}
	return plans
}

// lightlyLoaded implements the paper's candidate categories for dim d:
// absolutely lightly loaded (fewer entities than the average) or
// relatively lightly loaded (fewer than the heavy part considered).
func lightlyLoaded(counts [4][]int64, avg []float64, d int, q, heavy int32) bool {
	if float64(counts[d][q]) < avg[d] {
		return true
	}
	return counts[d][q] < counts[d][heavy]
}

// gatherAll gathers per-part counts for every dimension (collective).
func gatherAll(dm *partition.DMesh) [4][]int64 {
	var out [4][]int64
	for d := 0; d <= dm.Dim; d++ {
		out[d] = partition.GatherCounts(dm, d)
	}
	return out
}
