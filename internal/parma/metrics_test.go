package parma

import (
	"testing"

	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/telemetry"
)

// TestBalanceMetered checks a metered ParMA run feeds the live
// telemetry series: per-iteration durations, total balance time, the
// allreduced-imbalance gauge, and the partition-layer migration
// histogram underneath.
func TestBalanceMetered(t *testing.T) {
	reg := telemetry.NewRegistry()
	const ranks = 4
	_, err := pcu.RunOpt(ranks, pcu.Options{Metrics: reg}, func(ctx *pcu.Ctx) error {
		dm := buildImbalanced(ctx, ranks, 12, 4, 4)
		pri, _ := ParsePriority("Rgn")
		res := Balance(dm, pri, Config{Tolerance: 1.05, MaxIters: 40})
		if len(res.Levels) != 1 || res.Levels[0].Iters == 0 {
			t.Errorf("balance made no iterations: %+v", res.Levels)
		}
		return partition.Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Histogram("parma.iter.ns").Count(); n < ranks {
		t.Errorf("parma.iter.ns observations = %d, want >= %d", n, ranks)
	}
	if n := reg.Histogram("parma.balance.ns").Count(); n != ranks {
		t.Errorf("parma.balance.ns observations = %d, want %d", n, ranks)
	}
	// Every iteration publishes the allreduced imbalance; after a
	// converged balance the last published value is near 1.
	if v, ok := reg.Gauge("parma.imbalance").Get(0); !ok || v < 1 || v > 2 {
		t.Errorf("parma.imbalance gauge = %v (set=%v), want a plausible final imbalance", v, ok)
	}
	if reg.Histogram("partition.migrate.ns").Count() == 0 {
		t.Error("no migration durations recorded during a metered balance")
	}
}
