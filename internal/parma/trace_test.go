package parma

import (
	"bytes"
	"strings"
	"testing"

	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/trace"
)

// TestBalanceTraced8Ranks is the observability acceptance test: an
// 8-rank ParMA balance run under the flight recorder must produce (a) a
// per-iteration imbalance series every rank agrees on, (b) parma.iter
// and partition.migrate spans on every rank, and (c) a Chrome
// trace-event export and metrics summary that pass schema validation —
// the files pumi-trace and Perfetto consume.
func TestBalanceTraced8Ranks(t *testing.T) {
	const ranks = 8
	tr := trace.New(ranks, trace.Config{})
	_, err := pcu.RunOpt(ranks, pcu.Options{Trace: tr}, func(ctx *pcu.Ctx) error {
		dm := buildImbalanced(ctx, ranks, 16, 4, 4)
		pri, _ := ParsePriority("Rgn")
		res := Balance(dm, pri, Config{Tolerance: 1.05, MaxIters: 60})
		if len(res.Levels) != 1 || res.Levels[0].Iters == 0 {
			t.Errorf("balance made no iterations: %+v", res.Levels)
		}
		return partition.Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every rank recorded the same allreduced imbalance trajectory.
	var series []trace.Event
	for r := 0; r < ranks; r++ {
		var mine []trace.Event
		var iters, migrates int
		for _, e := range tr.Rank(r).Snapshot() {
			switch {
			case e.Kind == trace.KindParmaIter:
				mine = append(mine, e)
			case e.Kind == trace.KindBegin && e.Name == "parma.iter":
				iters++
			case e.Kind == trace.KindBegin && e.Name == "partition.migrate":
				migrates++
			}
		}
		if len(mine) < 2 {
			t.Fatalf("rank %d recorded %d parma iterations, want a trajectory", r, len(mine))
		}
		if iters == 0 || migrates == 0 {
			t.Errorf("rank %d recorded %d parma.iter and %d partition.migrate spans, want both > 0", r, iters, migrates)
		}
		if r == 0 {
			series = mine
			if first := mine[0].V; first < 1.4 {
				t.Errorf("first recorded imbalance %.3f, setup should be heavily imbalanced", first)
			}
			if last := mine[len(mine)-1].V; last > 1.15 {
				t.Errorf("last recorded imbalance %.3f, balancing should have converged", last)
			}
		} else {
			if len(mine) != len(series) {
				t.Fatalf("rank %d trajectory length %d != rank 0's %d", r, len(mine), len(series))
			}
			for i := range mine {
				if mine[i].V != series[i].V || mine[i].B != series[i].B {
					t.Errorf("rank %d iteration %d records imb %.4f, rank 0 has %.4f", r, i, mine[i].V, series[i].V)
				}
			}
		}
	}

	var chrome bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if kind, err := trace.ValidateFile(chrome.Bytes()); err != nil || kind != trace.FileChrome {
		t.Fatalf("8-rank balance chrome export invalid: kind=%v err=%v", kind, err)
	}
	for _, want := range []string{`"parma.iter"`, `"parma.imbalance"`, `"partition.migrate"`} {
		if !strings.Contains(chrome.String(), want) {
			t.Errorf("chrome export missing %s", want)
		}
	}

	s := tr.Summarize()
	if len(s.Parma) != len(series) {
		t.Errorf("summary parma series has %d points, trace has %d", len(s.Parma), len(series))
	}
	var haveMigrate bool
	for _, p := range s.Phases {
		if p.Name == "partition.migrate" && p.Count > 0 && p.Imbalance >= 1 {
			haveMigrate = true
		}
	}
	if !haveMigrate {
		t.Errorf("summary phases missing partition.migrate: %+v", s.Phases)
	}
	var sum bytes.Buffer
	if err := tr.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if kind, err := trace.ValidateFile(sum.Bytes()); err != nil || kind != trace.FileSummary {
		t.Fatalf("8-rank balance summary invalid: kind=%v err=%v", kind, err)
	}
}
