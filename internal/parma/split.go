package parma

import (
	"sort"

	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/zpart"
)

// Heavy part splitting (paper §III-B): when diffusion cannot reduce
// large imbalance spikes — many small parts, or neighboring heavy parts
// after predictive load balancing — ParMA first merges lightly loaded
// parts to create empty parts (a 0-1 knapsack per part chooses the
// largest neighbor set that fits under the average; a maximal
// independent set resolves conflicting merges), then splits heavily
// loaded parts into the freed parts.

// Knapsack solves the 0-1 knapsack with value == weight (subset sum):
// it returns the indices of the items maximizing total weight without
// exceeding cap. Large capacities are scaled down to keep the DP small,
// trading exactness for speed exactly like practical implementations.
func Knapsack(weights []int64, cap int64) []int {
	if cap <= 0 || len(weights) == 0 {
		return nil
	}
	scale := int64(1)
	const maxCells = 1 << 14
	for cap/scale > maxCells {
		scale *= 2
	}
	w := make([]int64, len(weights))
	for i, x := range weights {
		w[i] = x / scale
	}
	c := int(cap / scale)
	// dp[j] = best exact total weight using a subset with scaled weight
	// sum j; take[i][j] records the choice for reconstruction.
	dp := make([]int64, c+1)
	reach := make([]bool, c+1)
	reach[0] = true
	take := make([][]bool, len(w))
	for i := range w {
		take[i] = make([]bool, c+1)
		wi := int(w[i])
		if wi > c || weights[i] > cap {
			continue
		}
		for j := c; j >= wi; j-- {
			if reach[j-wi] && dp[j-wi]+weights[i] <= cap && (!reach[j] || dp[j-wi]+weights[i] > dp[j]) {
				reach[j] = true
				dp[j] = dp[j-wi] + weights[i]
				take[i][j] = true
			}
		}
	}
	best, bestJ := int64(-1), -1
	for j := 0; j <= c; j++ {
		if reach[j] && dp[j] > best {
			best = dp[j]
			bestJ = j
		}
	}
	if bestJ <= 0 {
		return nil
	}
	var out []int
	j := bestJ
	for i := len(w) - 1; i >= 0; i-- {
		if j >= 0 && take[i][j] {
			out = append(out, i)
			j -= int(w[i])
		}
	}
	sort.Ints(out)
	return out
}

// MaximalIndependentSet greedily selects a maximal set of mutually
// disjoint part groups, considering them in the given order. It returns
// the selected indices.
func MaximalIndependentSet(groups [][]int32) []int {
	used := map[int32]bool{}
	var out []int
	for i, g := range groups {
		ok := true
		for _, p := range g {
			if used[p] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, p := range g {
			used[p] = true
		}
		out = append(out, i)
	}
	return out
}

// SplitResult reports what heavy part splitting did.
type SplitResult struct {
	Merges      int
	EmptyParts  int
	SplitPieces int
	Before      float64
	After       float64
}

// HeavyPartSplit runs one round of merge-and-split (collective):
// lightly loaded parts merge into neighbors (emptying themselves), and
// heavily loaded parts split into the freed parts. The caller typically
// follows with Balance for final smoothing, as the paper describes.
func HeavyPartSplit(dm *partition.DMesh, cfg Config) SplitResult {
	d := dm.Dim
	counts := partition.GatherCounts(dm, d)
	mean, imb := partition.Imbalance(counts)
	res := SplitResult{Before: imb}
	if imb <= cfg.Tolerance {
		res.After = imb
		return res
	}
	avg := mean

	// Phase 1: merge proposals. Each under-loaded local part solves a
	// knapsack over its under-loaded neighbors.
	type proposal struct {
		leader int32
		others []int32
		total  int64
	}
	var localProps []proposal
	for _, part := range dm.Parts {
		m := part.M
		self := m.Part()
		if float64(counts[self]) >= avg {
			continue
		}
		var nbs []int32
		var wts []int64
		for _, q := range m.NeighborParts(0) {
			if float64(counts[q]) < avg && counts[q] > 0 {
				nbs = append(nbs, q)
				wts = append(wts, counts[q])
			}
		}
		chosen := Knapsack(wts, int64(avg)-counts[self])
		if len(chosen) == 0 {
			continue
		}
		p := proposal{leader: self}
		p.total = counts[self]
		for _, ci := range chosen {
			p.others = append(p.others, nbs[ci])
			p.total += counts[nbs[ci]]
		}
		localProps = append(localProps, p)
	}
	// Gather proposals everywhere and pick a deterministic MIS,
	// ordered by merged weight descending then leader id.
	flat := make([]mergeProp, len(localProps))
	for i, p := range localProps {
		flat[i] = mergeProp{Leader: p.leader, Others: p.others, Total: p.total}
	}
	allProps := gatherProps(dm, flat)
	sort.SliceStable(allProps, func(a, b int) bool {
		if allProps[a].Total != allProps[b].Total {
			return allProps[a].Total > allProps[b].Total
		}
		return allProps[a].Leader < allProps[b].Leader
	})
	groups := make([][]int32, len(allProps))
	for i, p := range allProps {
		groups[i] = append([]int32{p.Leader}, p.Others...)
	}
	selected := MaximalIndependentSet(groups)
	res.Merges = len(selected)

	// Execute merges: members migrate everything to their leader.
	dest := map[int32]int32{}
	for _, si := range selected {
		p := allProps[si]
		for _, q := range p.Others {
			dest[q] = p.Leader
		}
	}
	plans := make([]partition.Plan, len(dm.Parts))
	for i, part := range dm.Parts {
		m := part.M
		if to, ok := dest[m.Part()]; ok {
			plans[i] = partition.Plan{}
			for el := range m.Elements() {
				plans[i][el] = to
			}
		}
	}
	partition.Migrate(dm, plans)

	// Phase 2: split heavy parts into the emptied parts.
	counts = partition.GatherCounts(dm, d)
	var empties []int32
	for p, c := range counts {
		if c == 0 {
			empties = append(empties, int32(p))
		}
	}
	res.EmptyParts = len(empties)
	type heavy struct {
		part   int32
		excess int64
		pieces int
	}
	var heavies []heavy
	for p, c := range counts {
		if float64(c) > cfg.Tolerance*avg {
			pieces := int(float64(c)/avg+0.5) - 1
			if pieces < 1 {
				pieces = 1
			}
			heavies = append(heavies, heavy{part: int32(p), excess: c - int64(avg), pieces: pieces})
		}
	}
	sort.SliceStable(heavies, func(a, b int) bool {
		if heavies[a].excess != heavies[b].excess {
			return heavies[a].excess > heavies[b].excess
		}
		return heavies[a].part < heavies[b].part
	})
	// Deterministic assignment of empties to heavies.
	assign := map[int32][]int32{}
	ei := 0
	for _, h := range heavies {
		for k := 0; k < h.pieces && ei < len(empties); k++ {
			assign[h.part] = append(assign[h.part], empties[ei])
			ei++
		}
	}
	// Each rank splits its local heavy parts geometrically.
	plans = make([]partition.Plan, len(dm.Parts))
	for i, part := range dm.Parts {
		m := part.M
		targets := assign[m.Part()]
		if len(targets) == 0 {
			continue
		}
		in, els := zpart.Centroids(m)
		sub := zpart.RIB(in, len(targets)+1)
		plans[i] = partition.Plan{}
		for j, el := range els {
			if sub[j] > 0 {
				plans[i][el] = targets[sub[j]-1]
			}
		}
		res.SplitPieces += len(targets)
	}
	partition.Migrate(dm, plans)
	// Make the report identical on every rank (SplitPieces is tallied
	// only where the heavy parts live).
	res.SplitPieces = int(pcu.SumInt64(dm.Ctx, int64(res.SplitPieces)))
	_, res.After = partition.EntityImbalance(dm, d)
	return res
}

// mergeProp is one part's merge proposal: the leader absorbs Others.
type mergeProp struct {
	Leader int32
	Others []int32
	Total  int64
}

// gatherProps allgathers every rank's merge proposals (collective),
// returning the same combined list on all ranks, ordered by gathering
// rank then local order.
func gatherProps(dm *partition.DMesh, local []mergeProp) []mergeProp {
	var b pcu.Buffer
	b.Int32(int32(len(local)))
	for _, p := range local {
		b.Int32(p.Leader)
		b.Int32s(p.Others)
		b.Int64(p.Total)
	}
	blobs := pcu.Allgather(dm.Ctx, b.Raw())
	var out []mergeProp
	for _, blob := range blobs {
		r := pcu.NewReader(blob)
		n := int(r.Int32())
		for i := 0; i < n; i++ {
			out = append(out, mergeProp{
				Leader: r.Int32(),
				Others: r.Int32s(),
				Total:  r.Int64(),
			})
		}
		r.Done()
	}
	return out
}
