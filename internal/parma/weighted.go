package parma

import (
	"math"

	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// WeightFunc gives an application-defined load per element — the
// adjacency-based analogue of graph node weights in graph partitioners.
// Predictive load balancing for mesh adaptation (paper §III-B) uses the
// estimated post-adaptation element count as the weight.
type WeightFunc func(m *mesh.Mesh, el mesh.Ent) float64

// BalanceWeights diffuses element weight instead of entity counts: the
// same greedy cavity migration as Balance, driven by per-part total
// weight (collective). It returns the before/after weight imbalance.
func BalanceWeights(dm *partition.DMesh, weight WeightFunc, cfg Config) LevelResult {
	lr := LevelResult{Dim: dm.Dim}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		weights := gatherWeights(dm, weight)
		mean, imb := imbalanceF(weights)
		if iter == 0 {
			lr.Before, lr.MeanBefore = imb, mean
		}
		lr.After, lr.MeanAfter = imb, mean
		if imb <= cfg.Tolerance {
			lr.Iters = iter
			return lr
		}
		plans := buildWeightedPlans(dm, weights, mean, weight, cfg)
		moved := int64(0)
		for _, p := range plans {
			moved += int64(len(p))
		}
		total := pcu.SumInt64(dm.Ctx, moved)
		partition.Migrate(dm, plans)
		lr.Iters = iter + 1
		if total == 0 {
			break
		}
	}
	weights := gatherWeights(dm, weight)
	lr.MeanAfter, lr.After = imbalanceF(weights)
	return lr
}

// gatherWeights sums element weights per part across all ranks.
func gatherWeights(dm *partition.DMesh, weight WeightFunc) []float64 {
	return partition.GatherWeights(dm, func(p *partition.Part) float64 {
		w := 0.0
		for el := range p.M.Elements() {
			if !p.M.IsGhost(el) {
				w += weight(p.M, el)
			}
		}
		return w
	})
}

func imbalanceF(weights []float64) (mean, imb float64) {
	if len(weights) == 0 {
		return 0, 0
	}
	var sum, max float64
	for _, w := range weights {
		sum += w
		if w > max {
			max = w
		}
	}
	mean = sum / float64(len(weights))
	if mean == 0 {
		return 0, 0
	}
	return mean, max / mean
}

func buildWeightedPlans(dm *partition.DMesh, weights []float64, avg float64, weight WeightFunc, cfg Config) []partition.Plan {
	plans := make([]partition.Plan, len(dm.Parts))
	arrivals := map[int32]float64{}
	for i, part := range dm.Parts {
		m := part.M
		self := m.Part()
		plans[i] = partition.Plan{}
		myW := weights[self]
		if myW <= cfg.Tolerance*avg {
			continue
		}
		need := myW - avg
		candidates := map[int32]bool{}
		for _, q := range m.NeighborParts(0) {
			if weights[q] < avg || weights[q] < myW {
				candidates[q] = true
			}
		}
		if len(candidates) == 0 {
			continue
		}
		planned := map[mesh.Ent]bool{}
		for _, cav := range SelectCavities(m, dm.Dim) {
			if need <= 0 {
				break
			}
			overlap := false
			cavW := 0.0
			for _, el := range cav.Els {
				if planned[el] {
					overlap = true
					break
				}
				cavW += weight(m, el)
			}
			if overlap || cavW <= 0 {
				continue
			}
			var dest int32 = -1
			destLoad := math.Inf(1)
			for _, q := range m.RemoteParts(cav.Anchor) {
				if !candidates[q] {
					continue
				}
				load := weights[q] + arrivals[q]
				pairCap := (myW + weights[q]) / 2
				if load+cavW > pairCap {
					continue
				}
				if load < destLoad {
					dest = q
					destLoad = load
				}
			}
			if dest < 0 {
				continue
			}
			for _, el := range cav.Els {
				planned[el] = true
				plans[i][el] = dest
			}
			arrivals[dest] += cavW
			need -= cavW
		}
	}
	return plans
}
