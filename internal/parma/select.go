package parma

import (
	"sort"

	"github.com/fastmath/pumi-go/internal/mesh"
)

// Cavity is a candidate group of elements to migrate together, anchored
// at the part-boundary entity whose balance it improves. Score orders
// candidates: higher scores promise more reduction of the balanced
// entity type per element moved and less part-boundary growth.
type Cavity struct {
	Anchor mesh.Ent
	Els    []mesh.Ent
	Score  float64
}

// vtxCavityLimit caps the cavity size for vertex-driven selection
// (Zhou's strategy migrates small cavities around boundary vertices).
const vtxCavityLimit = 4

// edgeCavityLimit caps the cavity size for edge-driven selection: an
// edge bounding two faces on the part has one adjacent region (Fig 10a)
// and is the preferred case. The paper's Fig 10b analysis shows larger
// cavities grow the part boundary faster than they reduce edges, and
// measurements here agree, so the two-face case is the cutoff.
const edgeCavityLimit = 2

// SelectCavities proposes migration cavities on one part for improving
// the balance of entities of dimension dim, following the paper's
// selection rules:
//
//   - regions (dim == D): elements with more faces classified on the
//     part boundary than on the part interior (Fig 9);
//   - faces (dim == D-1 in 3D): elements ranked by their number of
//     part-boundary faces (each such face leaves the part with the
//     element);
//   - edges (Fig 10): part-boundary edges bounding few local elements;
//     the whole local cavity of the edge migrates so the edge leaves
//     the part;
//   - vertices (Zhou's strategy): part-boundary vertices with small
//     local element cavities.
//
// Cavities are returned in decreasing score order, deterministically.
func SelectCavities(m *mesh.Mesh, dim int) []Cavity {
	d := m.Dim()
	var out []Cavity
	switch {
	case dim == d || dim == d-1:
		out = selectByBoundaryFaces(m, dim == d)
	case dim == 0:
		out = selectByCavity(m, 0, vtxCavityLimit)
	default:
		out = selectByCavity(m, dim, edgeCavityLimit)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Anchor.Less(out[j].Anchor)
	})
	return out
}

// selectByBoundaryFaces implements the Fig 9 preference: elements are
// ranked by how many of their faces are classified on the part boundary
// versus the part interior. Elements with more boundary than interior
// faces (the figure's examples) rank first — migrating them shrinks the
// boundary — but boundary-layer elements with a single shared face
// remain eligible so diffusion keeps making progress on flat
// interfaces. For region balance the score is nb-ni; for face balance
// it is nb, the number of faces the move removes from the part.
func selectByBoundaryFaces(m *mesh.Mesh, forRegions bool) []Cavity {
	d := m.Dim()
	seen := map[mesh.Ent]bool{}
	var out []Cavity
	for f := range m.PartBoundary(d - 1) {
		for _, el := range m.Adjacent(f, d) {
			if seen[el] || m.IsGhost(el) {
				continue
			}
			seen[el] = true
			nb, ni := 0, 0
			for _, ef := range m.Adjacent(el, d-1) {
				if m.IsShared(ef) {
					nb++
				} else {
					ni++
				}
			}
			if nb == 0 {
				continue
			}
			score := float64(nb)
			if forRegions {
				score = float64(nb - ni)
			}
			out = append(out, Cavity{
				Anchor: f,
				Els:    []mesh.Ent{el},
				Score:  score,
			})
		}
	}
	return out
}

// selectByCavity implements the Fig 10 edge rule and Zhou's vertex
// rule: part-boundary entities of the given dimension whose local
// element cavity is small migrate as a unit, removing the entity from
// the part.
func selectByCavity(m *mesh.Mesh, dim, limit int) []Cavity {
	d := m.Dim()
	var out []Cavity
	for b := range m.PartBoundary(dim) {
		els := m.Adjacent(b, d)
		if len(els) == 0 || len(els) > limit {
			continue
		}
		ok := true
		for _, el := range els {
			if m.IsGhost(el) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, Cavity{
			Anchor: b,
			Els:    els,
			Score:  1 / float64(len(els)),
		})
	}
	return out
}

// closureCounts returns, per dimension 0..D-1, the number of distinct
// downward entities of the given elements — the upper bound on entities
// arriving at the destination with the cavity.
func closureCounts(m *mesh.Mesh, els []mesh.Ent) [4]int {
	var counts [4]int
	seen := map[mesh.Ent]bool{}
	d := m.Dim()
	for _, el := range els {
		for dd := 0; dd < d; dd++ {
			for _, e := range m.Adjacent(el, dd) {
				if !seen[e] {
					seen[e] = true
					counts[dd]++
				}
			}
		}
	}
	counts[d] = len(els)
	return counts
}

// leavingCount returns how many entities of dimension dim would leave
// the part if the elements in `leaving` (a set including this cavity)
// migrate: entities all of whose local adjacent elements are leaving.
func leavingCount(m *mesh.Mesh, cav []mesh.Ent, leaving map[mesh.Ent]bool, dim int) int {
	d := m.Dim()
	if dim == d {
		return len(cav)
	}
	n := 0
	seen := map[mesh.Ent]bool{}
	for _, el := range cav {
		for _, e := range m.Adjacent(el, dim) {
			if seen[e] {
				continue
			}
			seen[e] = true
			all := true
			for _, up := range m.Adjacent(e, d) {
				if !leaving[up] {
					all = false
					break
				}
			}
			if all {
				n++
			}
		}
	}
	return n
}
