package parma

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/zpart"
)

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"Vtx>Rgn", "Vtx>Rgn"},
		{"Vtx=Edge>Rgn", "Vtx=Edge>Rgn"},
		{"Edge>Rgn", "Edge>Rgn"},
		{"Edge=Face>Rgn", "Edge=Face>Rgn"},
		{"rgn", "Rgn"},
		// Equal priorities reorder to increasing dimension.
		{"Face=Edge>Rgn", "Edge=Face>Rgn"},
		{"v>e>f>r", "Vtx>Edge>Face>Rgn"},
	}
	for _, c := range cases {
		p, err := ParsePriority(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if p.String() != c.want {
			t.Fatalf("%q -> %q, want %q", c.in, p.String(), c.want)
		}
	}
	for _, bad := range []string{"", "Vtx>Bogus", "Vtx>Vtx", "Vtx=Vtx"} {
		if _, err := ParsePriority(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestPriorityHelpers(t *testing.T) {
	p, _ := ParsePriority("Vtx=Edge>Rgn")
	if dims := p.Dims(); len(dims) != 3 || dims[0] != 0 || dims[1] != 1 || dims[2] != 3 {
		t.Fatalf("Dims = %v", dims)
	}
	if h := p.higherPriority(0); len(h) != 0 {
		t.Fatalf("level 0 higher = %v", h)
	}
	if h := p.higherPriority(1); len(h) != 2 {
		t.Fatalf("level 1 higher = %v", h)
	}
}

func TestKnapsackAgainstBruteForce(t *testing.T) {
	brute := func(w []int64, cap int64) int64 {
		best := int64(0)
		n := len(w)
		for mask := 0; mask < 1<<n; mask++ {
			var s int64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					s += w[i]
				}
			}
			if s <= cap && s > best {
				best = s
			}
		}
		return best
	}
	f := func(raw []uint8, capRaw uint8) bool {
		if len(raw) > 12 {
			raw = raw[:12]
		}
		w := make([]int64, len(raw))
		for i, x := range raw {
			w[i] = int64(x%50) + 1
		}
		cap := int64(capRaw%200) + 1
		got := Knapsack(w, cap)
		var sum int64
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= len(w) || seen[i] {
				return false
			}
			seen[i] = true
			sum += w[i]
		}
		if sum > cap {
			return false
		}
		return sum == brute(w, cap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKnapsackEdgeCases(t *testing.T) {
	if got := Knapsack(nil, 10); got != nil {
		t.Fatal("empty items")
	}
	if got := Knapsack([]int64{5}, 0); got != nil {
		t.Fatal("zero cap")
	}
	if got := Knapsack([]int64{100}, 10); got != nil {
		t.Fatal("oversized item taken")
	}
	got := Knapsack([]int64{3, 4, 5}, 7)
	var sum int64
	for _, i := range got {
		sum += []int64{3, 4, 5}[i]
	}
	if sum != 7 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestMaximalIndependentSet(t *testing.T) {
	groups := [][]int32{
		{0, 1, 2},
		{2, 3},
		{3, 4},
		{5},
		{0, 5},
	}
	sel := MaximalIndependentSet(groups)
	used := map[int32]bool{}
	for _, si := range sel {
		for _, p := range groups[si] {
			if used[p] {
				t.Fatal("not independent")
			}
			used[p] = true
		}
	}
	// Maximality: every unselected group conflicts with a selected one.
	selSet := map[int]bool{}
	for _, si := range sel {
		selSet[si] = true
	}
	for i, g := range groups {
		if selSet[i] {
			continue
		}
		conflict := false
		for _, p := range g {
			if used[p] {
				conflict = true
			}
		}
		if !conflict {
			t.Fatalf("group %d could have been added", i)
		}
	}
}

// buildImbalanced distributes a box mesh over nparts with a deliberate
// spike: part 0 steals half of its neighbor slab's elements, so part 0
// carries ~1.5x the average and part 1 ~0.5x.
func buildImbalanced(ctx *pcu.Ctx, nparts int, nx, ny, nz int) *partition.DMesh {
	model := gmi.Box(float64(nparts), 1, 1)
	var serial *mesh.Mesh
	if ctx.Rank() == 0 {
		serial = meshgen.Box3D(model, nx, ny, nz)
	}
	dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
	var assign map[mesh.Ent]int32
	if ctx.Rank() == 0 {
		assign = map[mesh.Ent]int32{}
		for el := range serial.Elements() {
			c := serial.Centroid(el)
			p := int32(c.X)
			if int(p) >= nparts {
				p = int32(nparts - 1)
			}
			if p == 1 && c.Y < 0.5 {
				p = 0 // spike: part 0 takes half of part 1's slab
			}
			assign[el] = p
		}
	}
	partition.Migrate(dm, partition.PlansFromAssignment(dm, assign))
	return dm
}

func TestBalanceRegions(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		dm := buildImbalanced(ctx, 4, 12, 4, 4)
		_, before := partition.EntityImbalance(dm, 3)
		if before < 1.4 {
			return fmt.Errorf("setup not imbalanced: %g", before)
		}
		pri, _ := ParsePriority("Rgn")
		cfg := Config{Tolerance: 1.05, MaxIters: 60}
		res := Balance(dm, pri, cfg)
		_, after := partition.EntityImbalance(dm, 3)
		if after > 1.15 {
			return fmt.Errorf("imbalance %g -> %g (levels %+v)", before, after, res.Levels)
		}
		if err := partition.Verify(dm); err != nil {
			return err
		}
		if got := partition.GlobalCount(dm, 3); got != int64(6*12*4*4) {
			return fmt.Errorf("elements lost: %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBalanceVtxThenRgn(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		dm := buildImbalanced(ctx, 4, 12, 4, 4)
		pri, _ := ParsePriority("Vtx>Rgn")
		cfg := Config{Tolerance: 1.05, MaxIters: 60}
		res := Balance(dm, pri, cfg)
		_, vImb := partition.EntityImbalance(dm, 0)
		_, rImb := partition.EntityImbalance(dm, 3)
		if vImb > 1.25 {
			return fmt.Errorf("vertex imbalance %g (levels %+v)", vImb, res.Levels)
		}
		if rImb > 1.25 {
			return fmt.Errorf("region imbalance %g (levels %+v)", rImb, res.Levels)
		}
		// Balancing must not lose entities.
		if partition.GlobalCount(dm, 0) != int64(13*5*5) {
			return fmt.Errorf("vertices lost")
		}
		return partition.Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectCavitiesOnDistributedMesh(t *testing.T) {
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		model := gmi.Box(2, 1, 1)
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 4, 2, 2)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
		var assign map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			assign = map[mesh.Ent]int32{}
			for el := range serial.Elements() {
				if serial.Centroid(el).X >= 1 {
					assign[el] = 1
				}
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, assign))
		m := dm.Parts[0].M
		for _, dim := range []int{0, 1, 2, 3} {
			cavs := SelectCavities(m, dim)
			if len(cavs) == 0 {
				return fmt.Errorf("dim %d: no cavities", dim)
			}
			for i, c := range cavs {
				if len(c.Els) == 0 {
					return fmt.Errorf("empty cavity")
				}
				if !m.IsShared(c.Anchor) {
					return fmt.Errorf("anchor %v not on part boundary", c.Anchor)
				}
				if i > 0 && cavs[i-1].Score < c.Score {
					return fmt.Errorf("scores not descending")
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeavyPartSplit(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		// One giant part (0) and three tiny neighbors: diffusion is slow
		// here, splitting is the designed remedy.
		model := gmi.Box(4, 1, 1)
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 16, 3, 3)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
		var assign map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			assign = map[mesh.Ent]int32{}
			for el := range serial.Elements() {
				c := serial.Centroid(el)
				switch {
				case c.X < 3.4:
					assign[el] = 0
				case c.X < 3.6:
					assign[el] = 1
				case c.X < 3.8:
					assign[el] = 2
				default:
					assign[el] = 3
				}
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, assign))
		_, before := partition.EntityImbalance(dm, 3)
		if before < 2.0 {
			return fmt.Errorf("setup imbalance only %g", before)
		}
		cfg := Config{Tolerance: 1.05, MaxIters: 20}
		res := HeavyPartSplit(dm, cfg)
		if res.Merges == 0 || res.SplitPieces == 0 {
			return fmt.Errorf("split did nothing: %+v", res)
		}
		if res.After >= before*0.7 {
			return fmt.Errorf("split ineffective: %g -> %g", before, res.After)
		}
		if err := partition.Verify(dm); err != nil {
			return err
		}
		// Follow with diffusion as the paper prescribes.
		pri, _ := ParsePriority("Rgn")
		Balance(dm, pri, cfg)
		_, after := partition.EntityImbalance(dm, 3)
		if after > 1.3 {
			return fmt.Errorf("final imbalance %g", after)
		}
		return partition.Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBalanceReducesBoundaryOrKeepsModest(t *testing.T) {
	// The paper reports ParMA reduces total part-boundary entities; at
	// minimum it must not blow them up.
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		model := gmi.Box(4, 1, 1)
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 8, 4, 4)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
		var assign map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			in, els := zpart.Centroids(serial)
			part := zpart.RCB(in, 4)
			assign = map[mesh.Ent]int32{}
			for i, el := range els {
				assign[el] = part[i]
			}
			// Perturb: move a chunk of part 1 to part 0.
			n := 0
			for i, el := range els {
				if part[i] == 1 && n < 150 {
					assign[el] = 0
					n++
				}
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, assign))
		tr0 := partition.GatherBoundaryTraffic(dm, 0)
		pri, _ := ParsePriority("Rgn")
		Balance(dm, pri, Config{Tolerance: 1.05, MaxIters: 40})
		tr1 := partition.GatherBoundaryTraffic(dm, 0)
		if tr1.SharedTotal > tr0.SharedTotal*3/2 {
			return fmt.Errorf("boundary grew badly: %d -> %d", tr0.SharedTotal, tr1.SharedTotal)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBalanceWeights(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		dm := buildImbalanced(ctx, 4, 12, 4, 4)
		// Weight = 1 per element: reduces to count balancing.
		unit := func(m *mesh.Mesh, el mesh.Ent) float64 { return 1 }
		res := BalanceWeights(dm, unit, Config{Tolerance: 1.05, MaxIters: 60})
		if res.Before < 1.3 {
			return fmt.Errorf("setup not imbalanced: %g", res.Before)
		}
		if res.After > 1.15 {
			return fmt.Errorf("weighted balance failed: %g -> %g", res.Before, res.After)
		}
		return partition.Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBalanceWeightsNonUniform(t *testing.T) {
	err := pcu.Run(4, func(ctx *pcu.Ctx) error {
		// Counts are balanced but weights are not: elements at low x
		// are 5x heavier, so part 0 must shed elements.
		model := gmi.Box(4, 1, 1)
		var serial *mesh.Mesh
		if ctx.Rank() == 0 {
			serial = meshgen.Box3D(model, 12, 4, 4)
		}
		dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
		var assign map[mesh.Ent]int32
		if ctx.Rank() == 0 {
			assign = map[mesh.Ent]int32{}
			for el := range serial.Elements() {
				p := int32(serial.Centroid(el).X)
				if p > 3 {
					p = 3
				}
				assign[el] = p
			}
		}
		partition.Migrate(dm, partition.PlansFromAssignment(dm, assign))
		heavy := func(m *mesh.Mesh, el mesh.Ent) float64 {
			if m.Centroid(el).X < 1 {
				return 5
			}
			return 1
		}
		res := BalanceWeights(dm, heavy, Config{Tolerance: 1.10, MaxIters: 80})
		if res.Before < 1.5 {
			return fmt.Errorf("setup weight imbalance only %g", res.Before)
		}
		if res.After >= res.Before-0.3 {
			return fmt.Errorf("no weight improvement: %g -> %g", res.Before, res.After)
		}
		// Element counts may now be imbalanced -- that is the point of
		// application-defined weights.
		return partition.Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
}
