// Package parma implements ParMA: dynamic load balancing through the
// direct use of mesh adjacency information, as an alternative to (and
// refinement of) graph/hypergraph partitioners. Two procedures are
// provided, following the paper: multi-criteria partition improvement
// (greedy iterative diffusion honoring a priority list of entity types)
// and heavy part splitting (knapsack merges of light parts into empty
// parts, then splitting of heavy parts).
package parma

import (
	"fmt"
	"strings"
)

// Priority is a list of priority levels, highest first; each level
// lists the entity dimensions balanced together. Within one level the
// dimensions are processed in increasing topological dimension, as the
// paper specifies.
type Priority [][]int

// ParsePriority parses the paper's priority notation, e.g. "Vtx>Rgn",
// "Vtx=Edge>Rgn", "Edge=Face>Rgn". Recognized names (case-insensitive):
// Vtx, Edge, Face, Rgn (and V/E/F/R shorthands).
func ParsePriority(s string) (Priority, error) {
	var out Priority
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("parma: empty priority spec")
	}
	seen := map[int]bool{}
	for _, level := range strings.Split(s, ">") {
		var dims []int
		for _, name := range strings.Split(level, "=") {
			d, err := parseEntityName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			if seen[d] {
				return nil, fmt.Errorf("parma: %q appears twice in %q", name, s)
			}
			seen[d] = true
			dims = append(dims, d)
		}
		// Equal-priority entities are traversed in increasing dimension.
		for i := 1; i < len(dims); i++ {
			for j := i; j > 0 && dims[j] < dims[j-1]; j-- {
				dims[j], dims[j-1] = dims[j-1], dims[j]
			}
		}
		out = append(out, dims)
	}
	return out, nil
}

func parseEntityName(s string) (int, error) {
	switch strings.ToLower(s) {
	case "vtx", "v", "vertex":
		return 0, nil
	case "edge", "e":
		return 1, nil
	case "face", "f":
		return 2, nil
	case "rgn", "r", "region", "elm", "element":
		return 3, nil
	}
	return 0, fmt.Errorf("parma: unknown entity type %q", s)
}

// String renders the priority in the paper's notation.
func (p Priority) String() string {
	names := []string{"Vtx", "Edge", "Face", "Rgn"}
	var levels []string
	for _, level := range p {
		var parts []string
		for _, d := range level {
			parts = append(parts, names[d])
		}
		levels = append(levels, strings.Join(parts, "="))
	}
	return strings.Join(levels, ">")
}

// Dims returns all dimensions mentioned, in processing order.
func (p Priority) Dims() []int {
	var out []int
	for _, level := range p {
		out = append(out, level...)
	}
	return out
}

// higherPriority returns the dimensions of strictly higher priority
// than the level at index li.
func (p Priority) higherPriority(li int) []int {
	var out []int
	for i := 0; i < li; i++ {
		out = append(out, p[i]...)
	}
	return out
}

// guarded returns the dimensions whose balance must not be harmed while
// balancing dim t of level li: all strictly-higher-priority dimensions
// plus t's equal-priority peers (the paper's rule — e.g. for
// Rgn>Face=Edge>Vtx, face balancing must not harm regions or edges).
func (p Priority) guarded(li, t int) []int {
	out := p.higherPriority(li)
	for _, d := range p[li] {
		if d != t {
			out = append(out, d)
		}
	}
	return out
}
