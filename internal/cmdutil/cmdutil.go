// Package cmdutil holds the small shared pieces of the command-line
// tools: model specification parsing and mesh statistics printing.
package cmdutil

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
)

// ModelSpec describes an analytic model on the command line:
//
//	box:LX,LY,LZ          e.g. box:1,1,1
//	rect:LX,LY            e.g. rect:2,1
//	vessel:LEN,R0,BULGE,BEND
//	wing:SPAN,CHORD,THICK
type ModelSpec struct {
	Kind   string
	Params []float64
}

// ParseModelSpec parses a model specification string.
func ParseModelSpec(s string) (ModelSpec, error) {
	kind, rest, _ := strings.Cut(s, ":")
	spec := ModelSpec{Kind: strings.ToLower(kind)}
	if rest != "" {
		for _, p := range strings.Split(rest, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return spec, fmt.Errorf("cmdutil: bad model parameter %q: %w", p, err)
			}
			spec.Params = append(spec.Params, v)
		}
	}
	want := map[string]int{"box": 3, "rect": 2, "vessel": 4, "wing": 3}
	n, ok := want[spec.Kind]
	if !ok {
		return spec, fmt.Errorf("cmdutil: unknown model kind %q (box, rect, vessel, wing)", spec.Kind)
	}
	if len(spec.Params) != n {
		return spec, fmt.Errorf("cmdutil: model %q needs %d parameters, got %d", spec.Kind, n, len(spec.Params))
	}
	return spec, nil
}

// Build constructs the model. The second return value is the concrete
// typed model for generators that need it.
func (s ModelSpec) Build() (*gmi.Model, any) {
	switch s.Kind {
	case "box":
		m := gmi.Box(s.Params[0], s.Params[1], s.Params[2])
		return m.Model, m
	case "rect":
		m := gmi.Rect(s.Params[0], s.Params[1])
		return m.Model, m
	case "vessel":
		m := gmi.Vessel(s.Params[0], s.Params[1], s.Params[2], s.Params[3])
		return m.Model, m
	case "wing":
		m := gmi.Wing(s.Params[0], s.Params[1], s.Params[2])
		return m.Model, m
	}
	return nil, nil
}

// Dim returns the mesh dimension the model produces.
func (s ModelSpec) Dim() int {
	if s.Kind == "rect" {
		return 2
	}
	return 3
}

// PrintMeshStats writes an entity summary of a serial mesh.
func PrintMeshStats(w io.Writer, m *mesh.Mesh) {
	fmt.Fprintf(w, "dimension %d\n", m.Dim())
	names := []string{"vertices", "edges", "faces", "regions"}
	for d := 0; d <= m.Dim(); d++ {
		nb := 0
		for e := range m.Iter(d) {
			if int(m.Classification(e).Dim) < m.Dim() {
				nb++
			}
		}
		fmt.Fprintf(w, "%-9s %9d (%d classified on the model boundary)\n", names[d], m.Count(d), nb)
	}
	vol := 0.0
	for el := range m.Elements() {
		vol += m.Measure(el)
	}
	fmt.Fprintf(w, "measure   %12.6g\n", vol)
}
