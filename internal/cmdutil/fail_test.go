package cmdutil

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/fastmath/pumi-go/internal/pcu"
)

// captureExit reroutes Fail/Usagef side effects into memory for one
// test, restoring the real os.Exit/os.Stderr on cleanup.
func captureExit(t *testing.T) (*int, *bytes.Buffer) {
	t.Helper()
	code := -1
	var buf bytes.Buffer
	stderr = &buf
	exit = func(c int) { code = c; panic("cmdutil: exit") }
	t.Cleanup(func() {
		stderr = os.Stderr
		exit = os.Exit
	})
	return &code, &buf
}

func runToExit(f func()) {
	defer func() { recover() }()
	f()
}

func TestFailExitCodes(t *testing.T) {
	code, buf := captureExit(t)
	SetTool("vet-test")
	defer SetTool("pumi")

	runToExit(func() { Fail(errors.New("disk on fire")) })
	if *code != ExitRuntime {
		t.Fatalf("Fail exited %d, want %d", *code, ExitRuntime)
	}
	runToExit(func() { Usagef("-mesh is required") })
	if *code != ExitUsage {
		t.Fatalf("Usagef exited %d, want %d", *code, ExitUsage)
	}
	out := buf.String()
	for _, want := range []string{"vet-test: disk on fire", "vet-test: -mesh is required"} {
		if !strings.Contains(out, want) {
			t.Errorf("stderr %q missing %q", out, want)
		}
	}
}

func TestWithTimeoutAbortsParallelRuns(t *testing.T) {
	captureExit(t)
	disarm := WithTimeout(50 * time.Millisecond)
	defer disarm()
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		for {
			ctx.Barrier()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "wall-clock timeout") {
		t.Fatalf("want timeout-cause teardown, got %v", err)
	}
}

func TestWithTimeoutDisarmed(t *testing.T) {
	code, _ := captureExit(t)
	disarm := WithTimeout(10 * time.Millisecond)
	disarm()
	time.Sleep(30 * time.Millisecond)
	if n := pcu.AbortAll(errors.New("probe")); n != 0 {
		t.Fatalf("disarmed timeout left %d aborted runs", n)
	}
	if *code != -1 {
		t.Fatalf("disarmed timeout exited with %d", *code)
	}
}
