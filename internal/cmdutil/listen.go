package cmdutil

import (
	"fmt"
	"os"

	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/telemetry"
)

// ListenUsage is the shared -listen flag description.
const ListenUsage = "serve live introspection over HTTP on ADDR (e.g. 127.0.0.1:9970): /metrics (Prometheus text), /trace (Chrome trace JSON of the live rings), /protocol (conformance cursors), /healthz (watchdog verdicts); also turns on process-wide metering"

// StartListen wires a tool's -listen flag: with a non-empty address it
// installs a process-wide metrics registry — so every subsequent pcu
// run meters its ops, skew, queues and traffic — and serves the
// process's introspection sources over HTTP until the returned closer
// runs. With an empty address both are no-ops. Use as:
//
//	defer cmdutil.StartListen(*listenAddr)()
func StartListen(addr string) func() {
	if addr == "" {
		return func() {}
	}
	pcu.SetDefaultMetrics(telemetry.NewRegistry())
	srv, err := telemetry.Serve(addr, pcu.TelemetrySources())
	if err != nil {
		Fail(fmt.Errorf("-listen: %w", err))
	}
	fmt.Fprintf(os.Stderr, "%s: telemetry: http://%s (/metrics /trace /protocol /healthz)\n", tool, srv.Addr())
	return func() {
		srv.Close()
		pcu.SetDefaultMetrics(nil)
	}
}
