package cmdutil

import (
	"fmt"
	"os"
	"strings"

	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/trace"
)

// TraceUsage is the shared -trace flag description.
const TraceUsage = "record every parallel run with the flight recorder and write a Chrome trace-event timeline to FILE (open at https://ui.perfetto.dev); a metrics summary lands next to it as FILE's name with .summary.json"

// TraceSummaryPath derives the metrics-summary file name from the
// Chrome timeline path: out.json -> out.summary.json.
func TraceSummaryPath(path string) string {
	return strings.TrimSuffix(path, ".json") + ".summary.json"
}

// StartTrace wires a tool's -trace flag: with a non-empty path it
// installs a process-wide trace collector so every subsequent pcu run
// records into the flight recorder, and returns a closer that writes
// the merged Chrome timeline to path and the metrics summary to
// TraceSummaryPath(path). With an empty path both the install and the
// closer are no-ops. Use as:
//
//	defer cmdutil.StartTrace(*tracePath)()
func StartTrace(path string) func() {
	if path == "" {
		return func() {}
	}
	col := trace.NewCollector(trace.Config{})
	pcu.SetDefaultTrace(col)
	return func() {
		pcu.SetDefaultTrace(nil)
		if col.Runs() == 0 {
			fmt.Fprintf(os.Stderr, "%s: -trace: no parallel runs recorded\n", tool)
			return
		}
		chrome, err := os.Create(path)
		if err != nil {
			Fail(err)
		}
		if err := col.WriteChrome(chrome); err == nil {
			err = chrome.Close()
		}
		if err != nil {
			Fail(fmt.Errorf("writing trace: %w", err))
		}
		spath := TraceSummaryPath(path)
		sum, err := os.Create(spath)
		if err != nil {
			Fail(err)
		}
		if err := col.WriteSummary(sum); err == nil {
			err = sum.Close()
		}
		if err != nil {
			Fail(fmt.Errorf("writing trace summary: %w", err))
		}
		fmt.Fprintf(os.Stderr, "%s: trace: %d run(s) -> %s (timeline), %s (summary)\n",
			tool, col.Runs(), path, spath)
	}
}
