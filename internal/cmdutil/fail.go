package cmdutil

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/fastmath/pumi-go/internal/pcu"
)

// Exit codes shared by every command: usage errors (bad flags, missing
// arguments) exit 2 so scripts can tell them from runtime failures,
// which exit 1.
const (
	ExitRuntime = 1
	ExitUsage   = 2
)

var (
	tool             = "pumi"
	stderr io.Writer = os.Stderr
	exit             = os.Exit // swapped out by tests
)

// SetTool names the running command for failure messages.
func SetTool(name string) { tool = name }

// Fail reports a runtime error and exits with ExitRuntime.
func Fail(err error) {
	fmt.Fprintf(stderr, "%s: %v\n", tool, err)
	exit(ExitRuntime)
}

// Failf is Fail with formatting.
func Failf(format string, args ...any) {
	fmt.Fprintf(stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	exit(ExitRuntime)
}

// Usagef reports a command-line usage error and exits with ExitUsage.
func Usagef(format string, args ...any) {
	fmt.Fprintf(stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	exit(ExitUsage)
}

// WithTimeout arms a wall-clock limit on the whole command. When it
// expires, every running pcu world is aborted so blocked collectives
// unwind with a structured cause (the run's error names the timeout
// rather than the process dying silently); if the process still has not
// exited after a grace period — a hang outside any collective — it is
// terminated. The returned func disarms the limit; d <= 0 is a no-op.
func WithTimeout(d time.Duration) func() {
	if d <= 0 {
		return func() {}
	}
	name, w, die := tool, stderr, exit
	stop := make(chan struct{})
	go func() {
		select {
		case <-stop:
			return
		case <-time.After(d):
		}
		cause := fmt.Errorf("wall-clock timeout after %v", d)
		n := pcu.AbortAll(cause)
		fmt.Fprintf(w, "%s: timeout after %v, aborting %d parallel run(s)\n", name, d, n)
		select {
		case <-stop:
		case <-time.After(10 * time.Second):
			fmt.Fprintf(w, "%s: run did not unwind after abort, exiting\n", name)
			die(ExitRuntime)
		}
	}()
	return func() { close(stop) }
}
