package cmdutil

import (
	"strings"
	"testing"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/meshgen"
)

func TestParseModelSpec(t *testing.T) {
	cases := []struct {
		in   string
		kind string
		dim  int
	}{
		{"box:1,2,3", "box", 3},
		{"rect:2,1", "rect", 2},
		{"vessel:10,1,0.6,1.2", "vessel", 3},
		{"wing:4,2,0.5", "wing", 3},
		{"BOX:1,1,1", "box", 3},
	}
	for _, c := range cases {
		spec, err := ParseModelSpec(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if spec.Kind != c.kind || spec.Dim() != c.dim {
			t.Fatalf("%q -> %+v", c.in, spec)
		}
		model, typed := spec.Build()
		if model == nil || typed == nil {
			t.Fatalf("%q: Build returned nil", c.in)
		}
		if err := model.CheckConsistency(); err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
	}
}

func TestParseModelSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"", "sphere:1", "box", "box:1,2", "box:1,2,3,4", "box:a,b,c", "rect:1",
	} {
		if _, err := ParseModelSpec(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestBuildTypedModels(t *testing.T) {
	spec, _ := ParseModelSpec("vessel:10,1,0.5,1")
	_, typed := spec.Build()
	v, ok := typed.(*gmi.VesselModel)
	if !ok {
		t.Fatalf("vessel built %T", typed)
	}
	if v.Length != 10 || v.R0 != 1 {
		t.Fatal("vessel params lost")
	}
	spec, _ = ParseModelSpec("rect:2,3")
	_, typed = spec.Build()
	r, ok := typed.(*gmi.RectModel)
	if !ok || r.Lx != 2 || r.Ly != 3 {
		t.Fatalf("rect built %T", typed)
	}
}

func TestPrintMeshStats(t *testing.T) {
	m := meshgen.Box3D(gmi.Box(1, 1, 1), 2, 2, 2)
	var b strings.Builder
	PrintMeshStats(&b, m)
	out := b.String()
	for _, want := range []string{"dimension 3", "vertices", "regions", "measure"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats missing %q:\n%s", want, out)
		}
	}
}
