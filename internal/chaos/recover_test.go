package chaos

import (
	"slices"
	"testing"
	"time"

	"github.com/fastmath/pumi-go/internal/pcu"
)

// The workload's deterministic op timeline (probed fault-free): setup
// migration ends at op 6, the first checkpoint commits at op 20, and
// each balancing iteration spans ~14 ops. Rank 1's op 13 is an exchange
// inside iteration 0's migration where it sends off-node (wire damage
// there exercises the retransmit layer); op 40 is past two committed
// checkpoints (a death there must recover from one).
const (
	opInsideMigration  = 13
	opAfterCheckpoints = 40
)

// TestFaultMatrixClassification drives every FaultKind through the
// self-healing soak and asserts it lands on the expected terminal
// outcome — the transient kinds are mitigated in-world, a permanent
// death shrinks and recovers, and a panic stays a structured failure.
func TestFaultMatrixClassification(t *testing.T) {
	cases := []struct {
		name  string
		fault pcu.Fault
		want  string
	}{
		{"panic", pcu.Fault{Rank: 1, Op: opAfterCheckpoints, Kind: pcu.FaultPanic}, "injected-panic"},
		{"vanish", pcu.Fault{Rank: 1, Op: opAfterCheckpoints, Kind: pcu.FaultVanish}, "recovered-shrink"},
		{"delay", pcu.Fault{Rank: 1, Op: opAfterCheckpoints, Kind: pcu.FaultDelay, Delay: 5 * time.Millisecond}, "clean"},
		{"corrupt", pcu.Fault{Rank: 1, Op: opInsideMigration, Kind: pcu.FaultCorrupt}, "retried-transient"},
		{"truncate", pcu.Fault{Rank: 1, Op: opInsideMigration, Kind: pcu.FaultTruncate}, "retried-transient"},
		{"duplicate", pcu.Fault{Rank: 1, Op: opInsideMigration, Kind: pcu.FaultDuplicate}, "retried-transient"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := RunRecoverable(Config{
				Plan:         &pcu.FaultPlan{Faults: []pcu.Fault{tc.fault}},
				Dir:          t.TempDir(),
				StallTimeout: 30 * time.Second,
			})
			if err != nil {
				t.Fatalf("harness failure: %v", err)
			}
			if out.Outcome != tc.want {
				t.Fatalf("fault %v classified %q, want %q\n%s", tc.fault, out.Outcome, tc.want, out)
			}
		})
	}
}

// TestRecoverableShrinkDetails pins the full recovery contract for a
// permanent mid-soak death: survivors agree on the failed rank, the
// world shrinks to the largest divisor of the part count, the last
// checkpoint restores, and the final mesh verifies.
func TestRecoverableShrinkDetails(t *testing.T) {
	out, err := RunRecoverable(Config{
		Plan:         &pcu.FaultPlan{Faults: []pcu.Fault{{Rank: 1, Op: opAfterCheckpoints, Kind: pcu.FaultVanish}}},
		Dir:          t.TempDir(),
		StallTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("harness failure: %v", err)
	}
	if out.Outcome != "recovered-shrink" {
		t.Fatalf("want recovered-shrink, got %s", out)
	}
	if out.Attempts != 2 {
		t.Fatalf("want 2 attempts, got %d", out.Attempts)
	}
	// 4 parts, 3 survivors: the recovery world is the largest divisor of
	// 4 that 3 survivors can host — 2 ranks.
	if !slices.Equal(out.Sizes, []int{4, 2}) {
		t.Fatalf("want world sizes [4 2], got %v", out.Sizes)
	}
	if !slices.Equal(out.Failed, []int{1}) {
		t.Fatalf("want convicted ranks [1], got %v", out.Failed)
	}
	if !out.Resumed {
		t.Fatal("recovery should restore the committed checkpoint, not rebuild from scratch")
	}
	if !out.Verified {
		t.Fatal("recovered mesh must pass the distributed verifier")
	}
}

// TestRecoverableDeterministicPerSeed reruns the same explicit plan and
// asserts the recovery trajectory is identical — the acceptance bar for
// replayable failure investigations.
func TestRecoverableDeterministicPerSeed(t *testing.T) {
	run := func() RecoverOutcome {
		t.Helper()
		out, err := RunRecoverable(Config{
			Seed:         7,
			Plan:         &pcu.FaultPlan{Seed: 7, Faults: []pcu.Fault{{Rank: 2, Op: opAfterCheckpoints, Kind: pcu.FaultVanish}}},
			Dir:          t.TempDir(),
			StallTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatalf("harness failure: %v", err)
		}
		return out
	}
	a, b := run(), run()
	if a.Outcome != b.Outcome || a.Attempts != b.Attempts ||
		!slices.Equal(a.Sizes, b.Sizes) || !slices.Equal(a.Failed, b.Failed) {
		t.Fatalf("same plan diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRecoverableVanishBeforeCheckpoint: a death before the first
// checkpoint commits still recovers — the shrunken world rebuilds the
// workload from scratch instead of restoring.
func TestRecoverableVanishBeforeCheckpoint(t *testing.T) {
	out, err := RunRecoverable(Config{
		Plan:         &pcu.FaultPlan{Faults: []pcu.Fault{{Rank: 3, Op: 3, Kind: pcu.FaultVanish}}},
		Dir:          t.TempDir(),
		StallTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("harness failure: %v", err)
	}
	if out.Outcome != "recovered-shrink" {
		t.Fatalf("want recovered-shrink, got %s", out)
	}
	if out.Resumed {
		t.Fatal("no checkpoint existed; recovery should rebuild from scratch")
	}
	if !out.Verified {
		t.Fatal("recovered mesh must pass the distributed verifier")
	}
}
