package chaos

import (
	"strings"
	"testing"
	"time"
)

func soak(t *testing.T, seed int64) Outcome {
	t.Helper()
	out, err := Soak(Config{
		Seed:         seed,
		Dir:          t.TempDir(),
		StallTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("seed %d: harness failure: %v", seed, err)
	}
	return out
}

// TestSoakFixedSeeds drives the balancing stack under a spread of
// seeded fault plans. Every run must end in a clean success or a
// structured failure; when a checkpoint was committed before the
// failure, the restart leg must restore it and finish Verify-green.
// Seeds are fixed so CI failures reproduce exactly.
func TestSoakFixedSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	kinds := map[string]int{}
	for _, seed := range seeds {
		out := soak(t, seed)
		t.Logf("%s", out)
		if out.CleanRun {
			kinds["clean"]++
			continue
		}
		kinds[out.FailKind]++
		if out.Restarted && !out.Restored {
			t.Fatalf("seed %d: restart from checkpoint did not complete: %+v", seed, out)
		}
	}
	if len(kinds) < 2 {
		t.Errorf("seed spread exercised only %v; widen the seed list", kinds)
	}
}

// TestSoakSanitized is the pumi-san smoke: the whole faulted balancing
// stack — setup migration, ParMA iterations, checkpoint restore — runs
// under the sanitizer. A clean seed must stay clean (no false
// divergence or ownership findings from the real protocols), and a
// faulted seed must still classify structurally.
func TestSoakSanitized(t *testing.T) {
	seeds := []int64{1, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		out, err := Soak(Config{
			Seed:         seed,
			Dir:          t.TempDir(),
			StallTimeout: 20 * time.Second,
			Sanitize:     true,
		})
		if err != nil {
			t.Fatalf("seed %d: sanitized harness failure: %v", seed, err)
		}
		t.Logf("%s", out)
		if out.Restarted && !out.Restored {
			t.Fatalf("seed %d: sanitized restart did not complete: %+v", seed, out)
		}
	}
}

// TestSoakDeterministic reruns one seed and demands the same fault
// plan and the same classified failure — the reproducibility contract
// that makes chaos failures debuggable. Error text is compared too,
// except for stalls, whose watchdog snapshots depend on timing.
func TestSoakDeterministic(t *testing.T) {
	const seed = 3
	a := soak(t, seed)
	b := soak(t, seed)
	if a.Plan != b.Plan {
		t.Fatalf("fault plan not reproducible:\n  %s\n  %s", a.Plan, b.Plan)
	}
	if a.CleanRun != b.CleanRun || a.FailKind != b.FailKind {
		t.Fatalf("outcome not reproducible:\n  %+v\n  %+v", a, b)
	}
	if a.FailKind != "stall" && a.RunErr != b.RunErr {
		t.Fatalf("error text not reproducible:\n  %q\n  %q", a.RunErr, b.RunErr)
	}
}

// TestSoakTracedTimeline runs seeds under the flight recorder until one
// fails and checks the Outcome carries a per-rank timeline of the
// events leading up to the failure — the chaos analogue of the
// watchdog's StallError trails.
func TestSoakTracedTimeline(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		out, err := Soak(Config{
			Seed:         seed,
			Dir:          t.TempDir(),
			StallTimeout: 20 * time.Second,
			Trace:        true,
		})
		if err != nil {
			t.Fatalf("seed %d: harness failure: %v", seed, err)
		}
		if out.CleanRun {
			if out.Timeline != nil {
				t.Fatalf("seed %d: clean run should not attach a timeline", seed)
			}
			continue
		}
		if len(out.Timeline) == 0 {
			t.Fatalf("seed %d: failed traced attempt (%s) has no timeline", seed, out.FailKind)
		}
		for r, line := range out.Timeline {
			if !strings.Contains(line, "rank ") {
				t.Errorf("seed %d: timeline line %d %q not rank-labelled", seed, r, line)
			}
		}
		// The faulted attempt's last recorded ops must appear: every
		// failing plan strikes inside a collective or exchange window.
		joined := strings.Join(out.Timeline, "\n")
		if !strings.Contains(joined, "{") && !strings.Contains(joined, "fault") {
			t.Errorf("seed %d: timeline names no operations or faults:\n%s", seed, joined)
		}
		return // one failing seed is the point; keep the test fast
	}
	t.Fatal("no seed in 1..8 produced a failure; widen the seed range")
}
