package chaos

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"github.com/fastmath/pumi-go/internal/lint/automata"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/san"
	"github.com/fastmath/pumi-go/internal/trace"
)

// goldenProtocol loads the committed pumi-proto/1 artifact and returns
// the machine -emit-automata derived for chaos.RunRecoverable — the
// same automaton make proto-check enforces at build time.
func goldenProtocol(t *testing.T) *san.Protocol {
	t.Helper()
	set, err := automata.LoadFile(filepath.Join("..", "lint", "automata", "golden", "automata.json"))
	if err != nil {
		t.Fatalf("loading golden automata: %v", err)
	}
	m := set.Find("chaos.RunRecoverable")
	if m == nil {
		t.Fatal("golden artifact has no chaos.RunRecoverable machine")
	}
	p, err := m.Protocol()
	if err != nil {
		t.Fatalf("golden machine does not build a protocol: %v", err)
	}
	return p
}

// TestConformRecoverableSoak is the end-to-end acceptance check for the
// protocol automata: a seeded soak with a mid-run rank kill runs every
// epoch under the online monitor (no false positives — the recovery
// trajectory is unchanged), and the flight-recorder trace of the same
// run replays through the same automaton offline.
func TestConformRecoverableSoak(t *testing.T) {
	p := goldenProtocol(t)
	col := trace.NewCollector(trace.Config{Ring: 4096})
	pcu.SetDefaultTrace(col)
	defer pcu.SetDefaultTrace(nil)

	out, err := RunRecoverable(Config{
		Plan:         &pcu.FaultPlan{Faults: []pcu.Fault{{Rank: 1, Op: opAfterCheckpoints, Kind: pcu.FaultVanish}}},
		Dir:          t.TempDir(),
		StallTimeout: 30 * time.Second,
		Conform:      p,
	})
	if err != nil {
		t.Fatalf("harness failure: %v", err)
	}
	if out.Outcome != "recovered-shrink" {
		t.Fatalf("conformance changed the recovery trajectory: want recovered-shrink, got %s", out)
	}
	if !out.Verified {
		t.Fatal("recovered mesh must pass the distributed verifier")
	}

	// Offline leg: replay each rank's recorded op stream. Ranks that
	// survive into the recovery world carry a shrink boundary (reset or
	// shrink edge) and must end accepting; ranks that die with the
	// revoked world end mid-protocol, which is legal but non-accepting.
	var buf bytes.Buffer
	if err := col.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	streams, err := trace.OpStreams(buf.Bytes(), san.RuntimeCollectiveOps, "pcu.world", san.OpShrink)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 4 {
		t.Fatalf("got streams for %d ranks, want 4", len(streams))
	}
	accepted := 0
	for rank, ops := range streams {
		res := san.Replay(p, rank, ops)
		if res.Err != nil {
			t.Errorf("rank %d off the automaton at op %d: %v", rank, res.Err.Index, res.Err)
			continue
		}
		if res.Accepted {
			accepted++
		}
	}
	// The shrunken world has 2 ranks; both replay to acceptance.
	if accepted < 2 {
		t.Errorf("only %d rank stream(s) replay to acceptance, want >= 2", accepted)
	}
}

// TestConformCatchesIncompleteProtocol drives a world under the golden
// chaos.RunRecoverable automaton through a word the machine does not
// accept, and checks both enforcement points agree. The inferred
// machine is total (dynamic calls give every state a wildcard edge), so
// its violations surface as non-acceptance at world end: online via
// Finish's "(return)" witness, offline via Accepted=false — both
// pinning the same final state.
func TestConformCatchesIncompleteProtocol(t *testing.T) {
	p := goldenProtocol(t)
	col := trace.NewCollector(trace.Config{Ring: 1024})
	pcu.SetDefaultTrace(col)
	defer pcu.SetDefaultTrace(nil)

	// A lone exchange is the start of a migration that never finishes —
	// chaos.RunRecoverable can't return there.
	_, err := pcu.RunOpt(2, pcu.Options{Conform: p}, func(c *pcu.Ctx) error {
		c.Exchange()
		return nil
	})
	var online *san.ProtocolError
	if !errors.As(err, &online) {
		t.Fatalf("online run: %v, want protocol violation", err)
	}
	if online.Op != "(return)" || online.Index != 1 {
		t.Fatalf("online witness %+v, want (return) after 1 op", online)
	}

	var buf bytes.Buffer
	if err := col.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	streams, err := trace.OpStreams(buf.Bytes(), san.RuntimeCollectiveOps, "pcu.world", san.OpShrink)
	if err != nil {
		t.Fatal(err)
	}
	res := san.Replay(p, online.Rank, streams[online.Rank])
	if res.Err != nil {
		t.Fatalf("offline replay of rank %d: %v", online.Rank, res.Err)
	}
	if res.Accepted {
		t.Fatalf("offline replay accepted the incomplete stream: %+v", res)
	}
	if res.State != online.State || res.Steps != online.Index {
		t.Errorf("witnesses diverge:\n online  %+v\n offline %+v", online, res)
	}
}
