package chaos

import (
	"fmt"
	"slices"
	"testing"
	"time"

	"github.com/fastmath/pumi-go/internal/pcu"
)

// TestPlanSmokeRecoverDeterministicHashes is the plan-smoke lane: a
// recoverable chaos soak over the plan-backed ParMA balance, run with
// the pcu sanitizer recording the collective op sequence. For each
// fault scenario the soak runs twice from a fresh ledger and the two
// passes must report identical recovery trajectories AND identical
// sanitizer summaries — the cumulative op-sequence hash over the clean
// sanitized legs. A nondeterministic compiled plan (unstable peer
// order, epoch cache serving stale schedules after the shrink) would
// perturb the op stream and split the hashes.
func TestPlanSmokeRecoverDeterministicHashes(t *testing.T) {
	scenarios := []struct {
		seed  int64
		fault pcu.Fault
	}{
		{seed: 3, fault: pcu.Fault{Rank: 1, Op: opAfterCheckpoints, Kind: pcu.FaultVanish}},
		{seed: 11, fault: pcu.Fault{Rank: 2, Op: opAfterCheckpoints, Kind: pcu.FaultVanish}},
	}
	for _, sc := range scenarios {
		t.Run(fmt.Sprintf("seed%d", sc.seed), func(t *testing.T) {
			run := func() (RecoverOutcome, int64, uint64) {
				t.Helper()
				pcu.ResetSanSummary()
				out, err := RunRecoverable(Config{
					Seed:         sc.seed,
					Plan:         &pcu.FaultPlan{Seed: sc.seed, Faults: []pcu.Fault{sc.fault}},
					Dir:          t.TempDir(),
					StallTimeout: 30 * time.Second,
					Sanitize:     true,
				})
				if err != nil {
					t.Fatalf("harness failure: %v", err)
				}
				runs, hash := pcu.SanSummary()
				return out, runs, hash
			}
			outA, runsA, hashA := run()
			outB, runsB, hashB := run()

			if outA.Outcome != "recovered-shrink" || !outA.Verified {
				t.Fatalf("soak did not recover a verified mesh: %s", outA)
			}
			if outA.Outcome != outB.Outcome || outA.Attempts != outB.Attempts ||
				!slices.Equal(outA.Sizes, outB.Sizes) || !slices.Equal(outA.Failed, outB.Failed) {
				t.Fatalf("recovery trajectory diverged between identical runs:\n%+v\nvs\n%+v", outA, outB)
			}
			if runsA == 0 {
				t.Fatal("sanitized soak folded no clean runs into the ledger")
			}
			if runsA != runsB || hashA != hashB {
				t.Fatalf("op-sequence summary diverged between identical runs: (%d, %#x) vs (%d, %#x)",
					runsA, hashA, runsB, hashB)
			}
		})
	}
}
