package chaos

import (
	"fmt"
	"sync"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/meshio"
	"github.com/fastmath/pumi-go/internal/parma"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// RecoverOutcome reports one self-healing soak: a balancing run under a
// seeded fault plan in a Survivable world, supervised by pcu.Supervise
// so a permanent rank death shrinks the world and resumes from the last
// committed checkpoint instead of aborting.
type RecoverOutcome struct {
	Plan string // fault plan description, "seed N: ..."
	// Outcome classifies how the soak ended:
	//   "clean"             no fault disturbed the run (or only a delay)
	//   "retried-transient" wire damage repaired in-world by the
	//                       retransmit layer; the run completed
	//   "recovered-shrink"  rank death revoked the world; survivors
	//                       rebuilt a smaller one, restored the
	//                       checkpoint and finished
	// or a terminal failure kind from the Soak taxonomy
	// ("injected-panic", "migrate-abort", "corrupt", ...).
	Outcome string
	// Attempts counts worlds used: 1 means no revocation; each extra
	// attempt is one shrink-and-recover cycle.
	Attempts int
	// Sizes is the world size of each attempt.
	Sizes []int
	// Failed lists the ranks convicted when the first world was revoked
	// (first-attempt numbering); nil when no revocation happened.
	Failed []int
	// Retries/Replays are the final attempt's transient-fault counters.
	Retries, Replays int64
	// Resumed reports that a recovery attempt restored a checkpoint and
	// resumed from its cursor (rather than rebuilding from scratch).
	Resumed bool
	// FinalImb is the surviving mesh's peak element imbalance; Verified
	// reports that it passed the distributed verifier.
	FinalImb float64
	Verified bool
}

func (o RecoverOutcome) String() string {
	switch o.Outcome {
	case "clean":
		return fmt.Sprintf("%s -> clean (imb %.3f)", o.Plan, o.FinalImb)
	case "retried-transient":
		return fmt.Sprintf("%s -> retried-transient (%d retransmits, %d replays dropped, imb %.3f)",
			o.Plan, o.Retries, o.Replays, o.FinalImb)
	case "recovered-shrink":
		return fmt.Sprintf("%s -> recovered-shrink (failed %v, worlds %v, imb %.3f)",
			o.Plan, o.Failed, o.Sizes, o.FinalImb)
	default:
		return fmt.Sprintf("%s -> %s (not recoverable)", o.Plan, o.Outcome)
	}
}

// RunRecoverable is the self-healing counterpart of Soak: the balancing
// workload runs in a Survivable world under pcu.Supervise. Transient
// wire faults are retried away in-world; a permanent rank death revokes
// the world, and the supervisor rebuilds a smaller one over the
// survivors — sized to the largest divisor of the part count — restores
// the last committed checkpoint, resumes balancing from its cursor, and
// finishes with the distributed verifier green. It returns a non-nil
// error only for harness failures (an unclassifiable error, a recovery
// leg that cannot complete); terminal injected failures like a panic
// are reported in the Outcome.
func RunRecoverable(cfg Config) (RecoverOutcome, error) {
	cfg.fillDefaults()
	if cfg.Dir == "" {
		return RecoverOutcome{}, fmt.Errorf("chaos: Config.Dir is required")
	}
	if cfg.Ranks%2 != 0 {
		return RecoverOutcome{}, fmt.Errorf("chaos: Ranks must be even, got %d", cfg.Ranks)
	}
	plan := cfg.Plan
	if plan == nil {
		plan = pcu.RandomFaultPlan(cfg.Seed, cfg.Ranks, cfg.MaxOp)
	}
	out := RecoverOutcome{Plan: plan.String()}
	topo := hwtopo.Cluster(2, cfg.Ranks/2)
	logf(cfg, "chaos: recoverable %s\n", plan)

	// The part count is fixed by the first attempt; a rebuilt world must
	// divide it, so recovery uses the largest divisor that the survivor
	// count can host.
	nextSize := func(survivors int) int {
		for s := survivors; s > 1; s-- {
			if cfg.Ranks%s == 0 {
				return s
			}
		}
		return 1
	}

	var mu sync.Mutex
	imbs := map[int]float64{}
	stats, err := pcu.Supervise(cfg.Ranks, pcu.Options{
		Topo:         topo,
		Faults:       plan,
		StallTimeout: cfg.StallTimeout,
		Sanitize:     cfg.Sanitize,
		Conform:      cfg.Conform,
	}, nextSize, func(ctx *pcu.Ctx, ep pcu.Epoch) error {
		if ctx.Rank() == 0 {
			mu.Lock()
			out.Attempts = ep.Attempt + 1
			out.Sizes = append(out.Sizes, ep.Size)
			if ep.Attempt == 1 {
				out.Failed = ep.Failed
			}
			mu.Unlock()
			if ep.Attempt > 0 {
				logf(cfg, "chaos: world revoked (failed %v); recovering on %d ranks\n", ep.Failed, ep.Size)
			}
		}
		var dm *partition.DMesh
		var resume meshio.Cursor
		if ep.Attempt > 0 && meshio.CheckpointExists(cfg.Dir) {
			// Recovery world: restore the last committed checkpoint onto
			// the survivors and resume where it was taken.
			model := gmi.Box(4, 1, 1)
			var cur meshio.Cursor
			var err error
			dm, cur, err = meshio.LoadCheckpoint(cfg.Dir, ctx, model.Model)
			if err != nil {
				return fmt.Errorf("restoring checkpoint after revocation: %w", err)
			}
			resume = cur
			if ctx.Rank() == 0 {
				mu.Lock()
				out.Resumed = true
				mu.Unlock()
			}
			logf2(cfg, ctx, "chaos: restored checkpoint at %s level %d iter %d on %d ranks\n",
				cur.Phase, cur.Level, cur.Iter, ctx.Size())
		} else {
			// First attempt — or a death before the first checkpoint
			// committed: build the workload from scratch.
			var err error
			dm, err = buildUnbalanced(ctx, cfg)
			if err != nil {
				return verifyAfterAbort(dm, err)
			}
		}
		imb, err := balanceResumed(dm, cfg, resume)
		if err != nil {
			return err
		}
		if err := partition.Verify(dm); err != nil {
			return err
		}
		if ctx.Rank() == 0 {
			mu.Lock()
			imbs[ep.Attempt] = imb
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		out.Outcome = classifyFailure(err)
		if out.Outcome == "" {
			return out, fmt.Errorf("chaos: seed %d produced an unclassifiable failure: %w", cfg.Seed, err)
		}
		logf(cfg, "chaos: %s\n", out)
		return out, nil
	}
	out.Verified = true
	out.Retries = stats.Retries
	out.Replays = stats.Replays
	mu.Lock()
	out.FinalImb = imbs[out.Attempts-1]
	mu.Unlock()
	switch {
	case out.Attempts > 1:
		out.Outcome = "recovered-shrink"
	case out.Retries > 0 || out.Replays > 0:
		out.Outcome = "retried-transient"
	default:
		out.Outcome = "clean"
	}
	logf(cfg, "chaos: %s\n", out)
	return out, nil
}

// balanceResumed is balanceCheckpointed continuing from a checkpoint
// cursor: the iteration budget already spent is subtracted and saved
// cursors keep counting from where the interrupted run stopped.
func balanceResumed(dm *partition.DMesh, cfg Config, resume meshio.Cursor) (float64, error) {
	pcfg := parma.DefaultConfig()
	pcfg.Tolerance = cfg.Tolerance
	pcfg.MaxIters = cfg.MaxIters - resume.Iter
	if pcfg.MaxIters < 1 {
		pcfg.MaxIters = 1
	}
	pcfg.OnIter = func(dm *partition.DMesh, dim, iter int) error {
		return meshio.SaveCheckpoint(cfg.Dir, dm, meshio.Cursor{
			Phase: "parma", Level: dim, Iter: resume.Iter + iter,
		})
	}
	pri, _ := parma.ParsePriority("Rgn")
	if _, err := parma.BalanceSafe(dm, pri, pcfg); err != nil {
		return 0, verifyAfterAbort(dm, err)
	}
	_, imb := partition.EntityImbalance(dm, dm.Dim)
	return imb, nil
}
