package chaos

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/parma"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/telemetry"
	"github.com/fastmath/pumi-go/internal/trace"
)

// TestTelemetrySmoke is the telemetry-smoke lane: the balancing stack
// runs metered with the introspection endpoint served over real HTTP,
// rank 0 scrapes all four routes with net/http from inside the first
// balancing iteration's OnIter hook — while the other ranks sit blocked
// in their next collective — and every scraped document must validate
// against its schema.
func TestTelemetrySmoke(t *testing.T) {
	reg := telemetry.NewRegistry()
	pcu.SetDefaultMetrics(reg)
	defer pcu.SetDefaultMetrics(nil)
	// The live /trace view serves per-world flight-recorder rings, which
	// exist only for traced runs — mirror a tool started with both
	// -listen and -trace.
	col := trace.NewCollector(trace.Config{})
	pcu.SetDefaultTrace(col)
	defer pcu.SetDefaultTrace(nil)

	srv, err := telemetry.Serve("127.0.0.1:0", pcu.TelemetrySources())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string) (int, []byte) {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return 0, nil
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return 0, nil
		}
		return resp.StatusCode, body
	}

	cfg := Config{Ranks: 4, Dir: t.TempDir()}
	cfg.fillDefaults()
	scrapes := 0
	_, err = pcu.RunOpt(cfg.Ranks, pcu.Options{
		Topo:         hwtopo.Cluster(2, cfg.Ranks/2),
		StallTimeout: 30 * time.Second,
	}, func(ctx *pcu.Ctx) error {
		dm, err := buildUnbalanced(ctx, cfg)
		if err != nil {
			return err
		}
		pri, err := parma.ParsePriority("Rgn")
		if err != nil {
			return err
		}
		_, err = parma.BalanceSafe(dm, pri, parma.Config{
			Tolerance: cfg.Tolerance,
			MaxIters:  cfg.MaxIters,
			OnIter: func(dm *partition.DMesh, dim, iter int) error {
				if dm.Ctx.Rank() != 0 || iter != 0 {
					return nil
				}
				scrapes++

				code, body := get("/metrics")
				if code != http.StatusOK {
					t.Errorf("/metrics status = %d", code)
				}
				if n, err := telemetry.ValidatePrometheus(body); err != nil {
					t.Errorf("/metrics invalid: %v", err)
				} else if n == 0 {
					t.Error("/metrics served no samples mid-run")
				}
				for _, series := range []string{"pumi_pcu_op_exchange_ns", "pumi_parma_imbalance", "pumi_partition_migrate_ns"} {
					if !strings.Contains(string(body), series) {
						t.Errorf("/metrics missing %s mid-run", series)
					}
				}

				code, body = get("/trace")
				if code != http.StatusOK {
					t.Errorf("/trace status = %d", code)
				}
				if kind, err := trace.ValidateFile(body); err != nil || kind != trace.FileChrome {
					t.Errorf("/trace document: kind=%v err=%v", kind, err)
				}
				// The ring tail holds the most recent events; the hook runs
				// right after the first iteration's migration.
				if !strings.Contains(string(body), "partition.migrate") {
					t.Error("/trace missing the live partition.migrate span")
				}

				code, body = get("/healthz")
				if code != http.StatusOK {
					t.Errorf("/healthz status = %d", code)
				}
				var h telemetry.Health
				if err := json.Unmarshal(body, &h); err != nil {
					t.Errorf("/healthz invalid JSON: %v", err)
				} else if !h.Healthy || h.Worlds != 1 {
					t.Errorf("/healthz mid-run = %+v, want healthy with 1 world", h)
				}

				code, body = get("/protocol")
				if code != http.StatusOK {
					t.Errorf("/protocol status = %d", code)
				}
				var states []telemetry.ProtocolState
				if err := json.Unmarshal(body, &states); err != nil {
					t.Errorf("/protocol invalid JSON: %v", err)
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		return partition.Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
	if scrapes != 1 {
		t.Fatalf("mid-run scrape ran %d times, want 1", scrapes)
	}

	// After the run the endpoint keeps serving: metrics persist in the
	// registry and the watchdog view reports no active worlds.
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(string(body), "pumi_parma_iter_ns") {
		t.Errorf("post-run /metrics: status=%d", code)
	}
	code, body := get("/healthz")
	var h telemetry.Health
	if err := json.Unmarshal(body, &h); err != nil || code != http.StatusOK {
		t.Fatalf("post-run /healthz: status=%d err=%v", code, err)
	}
	if !h.Healthy || h.Worlds != 0 {
		t.Errorf("post-run health = %+v, want healthy with 0 worlds", h)
	}
}
