// Package chaos drives the ParMA balancing stack under seeded fault
// injection and checks the recovery story end to end: every run either
// completes cleanly or fails with a structured, diagnosable error — and
// when a checkpoint was committed before the failure, a fresh
// fault-free world restores it and finishes balancing with the
// partition verifier green. The fault plan derives deterministically
// from the seed, so any failure reproduces by rerunning the same seed.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/meshio"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/san"
	"github.com/fastmath/pumi-go/internal/trace"
)

// timelineTail is how many flight-recorder events per rank a failed
// attempt's Outcome.Timeline carries.
const timelineTail = 8

// Config parameterizes one soak run.
type Config struct {
	// Seed generates the fault plan; the same seed always yields the
	// same plan and, for non-timing faults, the same failure.
	Seed int64
	// Plan, when non-nil, replaces the seed-derived random plan with an
	// explicit fault schedule (the fault-matrix tests aim one kind at a
	// known operation).
	Plan *pcu.FaultPlan
	// Ranks is the world size, split across two nodes so the wire
	// faults have framed off-node traffic to hit. Must be even.
	// Default 4.
	Ranks int
	// NX, NY, NZ size the generated box mesh (elements = 6*NX*NY*NZ).
	// Default 6x3x3.
	NX, NY, NZ int
	// Tolerance and MaxIters configure the balancer. Defaults 1.05, 40.
	Tolerance float64
	MaxIters  int
	// MaxOp bounds the collective/exchange window faults are drawn
	// from. Early ops land in setup migration, later ones inside
	// balancing iterations. Default 120.
	MaxOp int64
	// Dir is the checkpoint directory (required). A checkpoint is
	// written after every completed balancing iteration.
	Dir string
	// StallTimeout arms the collective watchdog. Default 30s.
	StallTimeout time.Duration
	// Sanitize runs both attempts under pumi-san: the collective
	// schedule is cross-checked at every sync point and mesh writes go
	// through the ownership guard.
	Sanitize bool
	// Trace records the faulted attempt with the flight recorder; when
	// the attempt fails, Outcome.Timeline carries each rank's event tail
	// so a failure report shows what led up to it, not just the final
	// error.
	Trace bool
	// Conform, when non-nil, runs every world — the faulted attempt, the
	// restart, and each supervised epoch — under the online protocol
	// monitor: each rank's blocking-op stream must walk the automaton or
	// the run fails with a *san.ProtocolError witness ("san-protocol").
	Conform *san.Protocol
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Outcome reports what one soak observed. Plan and FailKind are
// deterministic functions of the seed and workload.
type Outcome struct {
	Plan     string // fault plan description, "seed N: ..."
	CleanRun bool   // the faulted attempt completed and verified
	RunErr   string // structured error from the faulted attempt, if any
	FailKind string // "", "injected-panic", "stall", "migrate-abort", "corrupt", "peer"
	// Restarted/Restored report the recovery leg: a checkpoint existed
	// after the failure, and a fresh world loaded it and finished
	// balancing with Verify green.
	Restarted bool
	Restored  bool
	FinalImb  float64 // peak element imbalance of the surviving mesh
	// Timeline holds each rank's flight-recorder tail from the faulted
	// attempt (one rendered line per rank) when Config.Trace was on and
	// the attempt failed.
	Timeline []string
}

func (o Outcome) String() string {
	switch {
	case o.CleanRun:
		return fmt.Sprintf("%s -> clean (imb %.3f)", o.Plan, o.FinalImb)
	case o.Restored:
		return fmt.Sprintf("%s -> %s, restored from checkpoint (imb %.3f)", o.Plan, o.FailKind, o.FinalImb)
	case o.Restarted:
		return fmt.Sprintf("%s -> %s, restart attempted", o.Plan, o.FailKind)
	default:
		return fmt.Sprintf("%s -> %s, no checkpoint to restore", o.Plan, o.FailKind)
	}
}

func (c *Config) fillDefaults() {
	if c.Ranks == 0 {
		c.Ranks = 4
	}
	if c.NX == 0 {
		c.NX, c.NY, c.NZ = 6, 3, 3
	}
	if c.Tolerance == 0 {
		c.Tolerance = 1.05
	}
	if c.MaxIters == 0 {
		c.MaxIters = 40
	}
	if c.MaxOp == 0 {
		c.MaxOp = 120
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 30 * time.Second
	}
}

// Soak runs one faulted balancing attempt followed, on failure, by a
// fault-free restart from the last committed checkpoint. It returns a
// non-nil error only for harness failures: an unclassifiable error
// kind, a mesh that fails Verify after a supposedly clean abort, or a
// restart that cannot complete. Structured injected failures are part
// of a successful soak and are reported in the Outcome.
func Soak(cfg Config) (Outcome, error) {
	cfg.fillDefaults()
	if cfg.Dir == "" {
		return Outcome{}, fmt.Errorf("chaos: Config.Dir is required")
	}
	if cfg.Ranks%2 != 0 {
		return Outcome{}, fmt.Errorf("chaos: Ranks must be even, got %d", cfg.Ranks)
	}
	plan := cfg.Plan
	if plan == nil {
		plan = pcu.RandomFaultPlan(cfg.Seed, cfg.Ranks, cfg.MaxOp)
	}
	out := Outcome{Plan: plan.String()}
	topo := hwtopo.Cluster(2, cfg.Ranks/2)
	logf(cfg, "chaos: %s\n", plan)

	finalImb := make([]float64, cfg.Ranks)
	if cfg.Sanitize {
		san.Enable()
		defer san.Disable()
	}
	var tr *trace.Trace
	if cfg.Trace {
		tr = trace.New(cfg.Ranks, trace.Config{})
	}
	_, err := pcu.RunOpt(cfg.Ranks, pcu.Options{
		Topo:         topo,
		Faults:       plan,
		StallTimeout: cfg.StallTimeout,
		Sanitize:     cfg.Sanitize,
		Trace:        tr,
		Conform:      cfg.Conform,
	}, func(ctx *pcu.Ctx) error {
		dm, err := buildUnbalanced(ctx, cfg)
		if err != nil {
			return verifyAfterAbort(dm, err)
		}
		imb, err := balanceCheckpointed(dm, cfg)
		if err != nil {
			return err
		}
		finalImb[ctx.Rank()] = imb
		return partition.Verify(dm)
	})
	if err == nil {
		out.CleanRun = true
		out.FinalImb = finalImb[0]
		logf(cfg, "chaos: %s\n", out)
		return out, nil
	}
	out.RunErr = err.Error()
	out.FailKind = classifyFailure(err)
	out.Timeline = tr.TailStrings(timelineTail)
	if out.FailKind == "" {
		return out, fmt.Errorf("chaos: seed %d produced an unclassifiable failure: %w", cfg.Seed, err)
	}
	logf(cfg, "chaos: faulted attempt failed (%s): %v\n", out.FailKind, err)

	if !meshio.CheckpointExists(cfg.Dir) {
		// The failure landed before the first balancing iteration
		// committed a checkpoint; a structured failure with nothing to
		// restore is still a passing soak.
		logf(cfg, "chaos: %s\n", out)
		return out, nil
	}
	out.Restarted = true
	_, err = pcu.RunOpt(cfg.Ranks, pcu.Options{
		Topo:         topo,
		StallTimeout: cfg.StallTimeout,
		Sanitize:     cfg.Sanitize,
		Conform:      cfg.Conform,
	}, func(ctx *pcu.Ctx) error {
		model := gmi.Box(4, 1, 1)
		dm, curs, err := meshio.LoadCheckpoint(cfg.Dir, ctx, model.Model)
		if err != nil {
			return fmt.Errorf("loading checkpoint: %w", err)
		}
		logf2(cfg, ctx, "chaos: restored checkpoint at %s level %d iter %d\n", curs.Phase, curs.Level, curs.Iter)
		imb, err := balanceCheckpointed(dm, cfg)
		if err != nil {
			return err
		}
		finalImb[ctx.Rank()] = imb
		return partition.Verify(dm)
	})
	if err != nil {
		return out, fmt.Errorf("chaos: seed %d: fault-free restart from checkpoint failed: %w", cfg.Seed, err)
	}
	out.Restored = true
	out.FinalImb = finalImb[0]
	logf(cfg, "chaos: %s\n", out)
	return out, nil
}

// buildUnbalanced generates a box mesh on rank 0 and distributes it in
// skewed X slabs: the low-X parts each take a thin slab and the last
// part the remaining majority, so balancing starts from a connected but
// heavily imbalanced layout.
func buildUnbalanced(ctx *pcu.Ctx, cfg Config) (*partition.DMesh, error) {
	model := gmi.Box(4, 1, 1)
	var serial *mesh.Mesh
	if ctx.Rank() == 0 {
		serial = meshgen.Box3D(model, cfg.NX, cfg.NY, cfg.NZ)
	}
	dm := partition.Adopt(ctx, model.Model, 3, serial, 1)
	nparts := dm.NParts()
	var assign map[mesh.Ent]int32
	if ctx.Rank() == 0 {
		assign = map[mesh.Ent]int32{}
		for el := range serial.Elements() {
			p := int32(serial.Centroid(el).X / 4.0 * float64(2*nparts))
			if int(p) >= nparts {
				p = int32(nparts - 1)
			}
			assign[el] = p
		}
	}
	return dm, partition.TryMigrate(dm, partition.PlansFromAssignment(dm, assign))
}

// verifyAfterAbort enforces the abort contract before surfacing the
// abort: the mesh a failed migration leaves behind must still verify.
func verifyAfterAbort(dm *partition.DMesh, abort error) error {
	if verr := partition.Verify(dm); verr != nil {
		return fmt.Errorf("chaos: mesh failed Verify after aborted migration: %v (abort cause: %w)", verr, abort)
	}
	return abort
}

// balanceCheckpointed runs element balancing with a checkpoint
// committed after every migration iteration, verifying the mesh is
// still consistent if the balance aborts. Returns the final peak
// element imbalance.
func balanceCheckpointed(dm *partition.DMesh, cfg Config) (float64, error) {
	// The abort contract: whatever the wire fault did, the local mesh
	// must still verify before the abort surfaces (balanceResumed runs
	// verifyAfterAbort on failure).
	return balanceResumed(dm, cfg, meshio.Cursor{})
}

// classifyFailure maps a run error to the structured failure taxonomy;
// "" means the error is none of the injected kinds — a harness failure.
func classifyFailure(err error) string {
	switch {
	case errors.Is(err, pcu.ErrStalled):
		return "stall"
	case errors.Is(err, pcu.ErrRevoked):
		return "revoked"
	case errors.Is(err, pcu.ErrFaultInjected):
		return "injected-panic"
	case errors.Is(err, partition.ErrMigrateAborted):
		return "migrate-abort"
	case errors.Is(err, pcu.ErrCorruptMessage):
		return "corrupt"
	case errors.Is(err, pcu.ErrPeerFailed):
		return "peer"
	case errors.Is(err, san.ErrDivergence):
		return "san-divergence"
	case errors.Is(err, san.ErrOwnership):
		return "san-ownership"
	case errors.Is(err, san.ErrProtocol):
		return "san-protocol"
	}
	return ""
}

func logf(cfg Config, format string, args ...any) {
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, format, args...)
	}
}

// logf2 logs from rank 0 only inside a run body.
func logf2(cfg Config, ctx *pcu.Ctx, format string, args ...any) {
	if cfg.Log != nil && ctx.Rank() == 0 {
		fmt.Fprintf(cfg.Log, format, args...)
	}
}
