package zpart

import (
	"testing"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/vec"
)

func testMesh(t *testing.T, n int) *mesh.Mesh {
	t.Helper()
	return meshgen.Box3D(gmi.Box(1, 1, 1), n, n, n)
}

func checkBalance(t *testing.T, name string, sizes []float64, tolFrac float64) {
	t.Helper()
	total, max := 0.0, 0.0
	for _, s := range sizes {
		total += s
		if s > max {
			max = s
		}
		if s == 0 {
			t.Fatalf("%s: empty part (sizes %v)", name, sizes)
		}
	}
	mean := total / float64(len(sizes))
	if max/mean > 1+tolFrac {
		t.Fatalf("%s: imbalance %.3f (sizes %v)", name, max/mean, sizes)
	}
}

func TestRCBBalanceAndDeterminism(t *testing.T) {
	m := testMesh(t, 6) // 1296 tets
	in, _ := Centroids(m)
	for _, k := range []int{2, 4, 7, 16} {
		part := RCB(in, k)
		sizes := make([]float64, k)
		for _, p := range part {
			if p < 0 || int(p) >= k {
				t.Fatalf("assignment out of range: %d", p)
			}
			sizes[p]++
		}
		checkBalance(t, "RCB", sizes, 0.05)
		again := RCB(in, k)
		for i := range part {
			if part[i] != again[i] {
				t.Fatal("RCB not deterministic")
			}
		}
	}
}

func TestRIBBalance(t *testing.T) {
	m := testMesh(t, 6)
	in, _ := Centroids(m)
	part := RIB(in, 8)
	sizes := make([]float64, 8)
	for _, p := range part {
		sizes[p]++
	}
	checkBalance(t, "RIB", sizes, 0.05)
}

func TestWeightedRCB(t *testing.T) {
	m := testMesh(t, 4)
	in, _ := Centroids(m)
	in.Wts = make([]float64, len(in.Pts))
	// Make low-x elements 3x heavier.
	for i, p := range in.Pts {
		if p.X < 0.5 {
			in.Wts[i] = 3
		} else {
			in.Wts[i] = 1
		}
	}
	part := RCB(in, 4)
	sizes := make([]float64, 4)
	for i, p := range part {
		sizes[p] += in.Wts[i]
	}
	checkBalance(t, "weighted RCB", sizes, 0.15)
}

func TestDualGraphStructure(t *testing.T) {
	m := testMesh(t, 2) // 48 tets
	g, els := DualGraph(m)
	if g.N() != 48 || len(els) != 48 {
		t.Fatalf("N = %d", g.N())
	}
	// Every tet has 1..4 face neighbors; interior tets have 4.
	for v := 0; v < g.N(); v++ {
		deg := int(g.XAdj[v+1] - g.XAdj[v])
		if deg < 1 || deg > 4 {
			t.Fatalf("tet with %d face neighbors", deg)
		}
	}
	// Symmetry: adjacency round trip.
	for v := int32(0); v < int32(g.N()); v++ {
		for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
			u := g.Adj[j]
			found := false
			for k := g.XAdj[u]; k < g.XAdj[u+1]; k++ {
				if g.Adj[k] == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatal("asymmetric dual graph")
			}
		}
	}
}

func TestMLGraphPartition(t *testing.T) {
	m := testMesh(t, 6)
	g, _ := DualGraph(m)
	for _, k := range []int{2, 4, 6} {
		part := MLGraph(g, k)
		sizes := PartSizes(g, part, k)
		checkBalance(t, "MLGraph", sizes, 0.10)
		if cut := g.EdgeCut(part); cut <= 0 {
			t.Fatalf("k=%d: cut = %g", k, cut)
		}
	}
	// The multilevel method should beat a naive slab-by-index split.
	part := MLGraph(g, 4)
	naive := make([]int32, g.N())
	for i := range naive {
		naive[i] = int32(i * 4 / g.N())
	}
	if g.EdgeCut(part) > g.EdgeCut(naive) {
		t.Fatalf("MLGraph cut %g worse than naive %g", g.EdgeCut(part), g.EdgeCut(naive))
	}
}

func TestElementHypergraph(t *testing.T) {
	m := testMesh(t, 2)
	h, els := ElementHypergraph(m, 0)
	if h.NV() != 48 || len(els) != 48 {
		t.Fatalf("NV = %d", h.NV())
	}
	if h.NN() == 0 {
		t.Fatal("no nets")
	}
	// Every net has >= 2 pins; pin/net CSR views agree.
	pinTotal := 0
	for n := 0; n < h.NN(); n++ {
		sz := int(h.NX[n+1] - h.NX[n])
		if sz < 2 {
			t.Fatalf("net with %d pins", sz)
		}
		pinTotal += sz
	}
	netTotal := 0
	for v := 0; v < h.NV(); v++ {
		netTotal += int(h.VX[v+1] - h.VX[v])
	}
	if pinTotal != netTotal {
		t.Fatalf("CSR views disagree: %d vs %d", pinTotal, netTotal)
	}
}

func TestPHGPartition(t *testing.T) {
	m := testMesh(t, 5)
	h, _ := ElementHypergraph(m, 0)
	for _, k := range []int{2, 4} {
		part := PHG(h, k)
		sizes := make([]float64, k)
		for _, p := range part {
			sizes[p]++
		}
		checkBalance(t, "PHG", sizes, 0.10)
		if cut := h.ConnectivityCut(part); cut <= 0 {
			t.Fatal("no cut")
		}
	}
	// PHG should produce a much better connectivity cut than a random
	// striped assignment.
	part := PHG(h, 4)
	striped := make([]int32, h.NV())
	for i := range striped {
		striped[i] = int32(i % 4)
	}
	if h.ConnectivityCut(part) > 0.5*h.ConnectivityCut(striped) {
		t.Fatalf("PHG cut %g vs striped %g", h.ConnectivityCut(part), h.ConnectivityCut(striped))
	}
}

func TestCutMetricsAgreeOnTwoParts(t *testing.T) {
	// Sanity: on a 1D chain graph, one cut edge.
	g := &Graph{
		XAdj: []int32{0, 1, 3, 4},
		Adj:  []int32{1, 0, 2, 1},
		EWt:  []float64{1, 1, 1, 1},
		VWt:  []float64{1, 1, 1},
	}
	part := []int32{0, 0, 1}
	if got := g.EdgeCut(part); got != 1 {
		t.Fatalf("cut = %g", got)
	}
}

// TestRIBRotatedGeometry: RIB's inertial axis should adapt to a thin
// rotated slab where axis-aligned RCB cuts poorly.
func TestRIBRotatedGeometry(t *testing.T) {
	// Points along a rotated line y = x with small transverse jitter.
	var in GeomInput
	for i := 0; i < 512; i++ {
		s := float64(i) / 511 * 10
		j := float64(i%7-3) * 0.01
		in.Pts = append(in.Pts, vecV(s+j, s-j, 0))
	}
	part := RIB(in, 2)
	// The bisection must split along the diagonal: all of side 0's
	// projections onto (1,1) must be below side 1's (or vice versa).
	lo0, hi0 := 1e30, -1e30
	lo1, hi1 := 1e30, -1e30
	for i, p := range part {
		proj := in.Pts[i].X + in.Pts[i].Y
		if p == 0 {
			lo0, hi0 = minf(lo0, proj), maxf(hi0, proj)
		} else {
			lo1, hi1 = minf(lo1, proj), maxf(hi1, proj)
		}
	}
	if !(hi0 <= lo1 || hi1 <= lo0) {
		t.Fatalf("RIB did not cut along the inertial axis: [%g,%g] vs [%g,%g]", lo0, hi0, lo1, hi1)
	}
	sizes := [2]int{}
	for _, p := range part {
		sizes[p]++
	}
	if sizes[0] != 256 || sizes[1] != 256 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func vecV(x, y, z float64) vec.V { return vec.V{X: x, Y: y, Z: z} }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TestCoarseningPreservesTotals: the multilevel coarsening of graphs
// and hypergraphs conserves vertex weight and keeps structures sane.
func TestCoarseningPreservesTotals(t *testing.T) {
	m := testMesh(t, 4)
	g, _ := DualGraph(m)
	cg, cmap := g.coarsen()
	if cg.N() >= g.N() {
		t.Fatalf("no coarsening: %d -> %d", g.N(), cg.N())
	}
	if cg.TotalVWt() != g.TotalVWt() {
		t.Fatalf("weight lost: %g -> %g", g.TotalVWt(), cg.TotalVWt())
	}
	for v := 0; v < g.N(); v++ {
		if int(cmap[v]) >= cg.N() || cmap[v] < 0 {
			t.Fatal("cmap out of range")
		}
	}
	h, _ := ElementHypergraph(m, 0)
	ch, hmap := h.coarsen()
	if ch.NV() >= h.NV() {
		t.Fatalf("no hypergraph coarsening: %d -> %d", h.NV(), ch.NV())
	}
	wt := 0.0
	for _, w := range ch.VWt {
		wt += w
	}
	if wt != float64(h.NV()) {
		t.Fatalf("hypergraph weight = %g", wt)
	}
	for v := 0; v < h.NV(); v++ {
		if int(hmap[v]) >= ch.NV() {
			t.Fatal("hmap out of range")
		}
	}
	// Coarse nets keep >= 2 pins.
	for n := 0; n < ch.NN(); n++ {
		if ch.NX[n+1]-ch.NX[n] < 2 {
			t.Fatal("singleton coarse net")
		}
	}
}
