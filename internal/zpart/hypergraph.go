package zpart

import (
	"sort"

	"github.com/fastmath/pumi-go/internal/mesh"
)

// Hypergraph is a weighted hypergraph in dual CSR form: vertex v's nets
// are Nets[VX[v]:VX[v+1]]; net n's pins are Pins[NX[n]:NX[n+1]].
type Hypergraph struct {
	VX   []int32
	Nets []int32
	NX   []int32
	Pins []int32
	VWt  []float64
	NWt  []float64
}

// NV returns the vertex count.
func (h *Hypergraph) NV() int { return len(h.VWt) }

// NN returns the net count.
func (h *Hypergraph) NN() int { return len(h.NWt) }

// ConnectivityCut returns the (lambda-1) cut metric: for each net, its
// weight times (number of parts it spans - 1). This is the objective
// hypergraph partitioners like Zoltan PHG minimize, modeling true
// communication volume.
func (h *Hypergraph) ConnectivityCut(part []int32) float64 {
	cut := 0.0
	seen := map[int32]bool{}
	for n := 0; n < h.NN(); n++ {
		for k := range seen {
			delete(seen, k)
		}
		for j := h.NX[n]; j < h.NX[n+1]; j++ {
			seen[part[h.Pins[j]]] = true
		}
		if len(seen) > 1 {
			cut += h.NWt[n] * float64(len(seen)-1)
		}
	}
	return cut
}

// ElementHypergraph extracts the element hypergraph of a mesh: one
// vertex per element, one net per mesh entity of dimension netDim
// connecting all elements adjacent to it (netDim 0 models communication
// through shared vertices, as PHG setups for FE meshes typically do).
// Nets with fewer than two pins are dropped.
func ElementHypergraph(m *mesh.Mesh, netDim int) (*Hypergraph, []mesh.Ent) {
	var els []mesh.Ent
	index := map[mesh.Ent]int32{}
	for el := range m.Elements() {
		index[el] = int32(len(els))
		els = append(els, el)
	}
	h := &Hypergraph{VWt: make([]float64, len(els))}
	for i := range h.VWt {
		h.VWt[i] = 1
	}
	var pinLists [][]int32
	for b := range m.Iter(netDim) {
		adj := m.Adjacent(b, m.Dim())
		if len(adj) < 2 {
			continue
		}
		pins := make([]int32, len(adj))
		for i, el := range adj {
			pins[i] = index[el]
		}
		pinLists = append(pinLists, pins)
	}
	h.buildFromPins(pinLists)
	return h, els
}

func (h *Hypergraph) buildFromPins(pinLists [][]int32) {
	nn := len(pinLists)
	h.NWt = make([]float64, nn)
	h.NX = make([]int32, nn+1)
	for n, pins := range pinLists {
		h.NWt[n] = 1
		h.NX[n+1] = h.NX[n] + int32(len(pins))
	}
	h.Pins = make([]int32, h.NX[nn])
	vdeg := make([]int32, h.NV()+1)
	for n, pins := range pinLists {
		copy(h.Pins[h.NX[n]:], pins)
		for _, p := range pins {
			vdeg[p+1]++
		}
	}
	for i := 0; i < h.NV(); i++ {
		vdeg[i+1] += vdeg[i]
	}
	h.VX = vdeg
	h.Nets = make([]int32, h.VX[h.NV()])
	fill := make([]int32, h.NV())
	for n, pins := range pinLists {
		for _, p := range pins {
			h.Nets[h.VX[p]+fill[p]] = int32(n)
			fill[p]++
		}
	}
}

// PHG partitions the hypergraph into nparts by multilevel recursive
// bisection minimizing the connectivity-1 cut: inner-product style
// coarsening (vertices matched with the neighbor sharing the most
// nets), greedy initial growth, and FM refinement with net-based gains.
// It is the stand-in for Zoltan's parallel hypergraph partitioner used
// as test T0 in the paper.
func PHG(h *Hypergraph, nparts int) []int32 {
	out := make([]int32, h.NV())
	ids := make([]int32, h.NV())
	for i := range ids {
		ids[i] = int32(i)
	}
	phgRecurse(h, ids, 0, nparts, out)
	return out
}

func phgRecurse(h *Hypergraph, globalIDs []int32, base, k int, out []int32) {
	if k == 1 {
		for _, gid := range globalIDs {
			out[gid] = int32(base)
		}
		return
	}
	kl := k / 2
	side := hBisectMultilevel(h, float64(kl)/float64(k))
	for s := uint8(0); s < 2; s++ {
		sh, ids := h.sub(side, s)
		subIDs := make([]int32, len(ids))
		for i, li := range ids {
			subIDs[i] = globalIDs[li]
		}
		if s == 0 {
			phgRecurse(sh, subIDs, base, kl, out)
		} else {
			phgRecurse(sh, subIDs, base+kl, k-kl, out)
		}
	}
}

func hBisectMultilevel(h *Hypergraph, leftFrac float64) []uint8 {
	if h.NV() <= coarsenTarget {
		p := hGreedyGrow(h, leftFrac)
		hFMRefine(h, p, leftFrac, 8)
		return p
	}
	ch, cmap := h.coarsen()
	if ch.NV() >= h.NV()*9/10 {
		p := hGreedyGrow(h, leftFrac)
		hFMRefine(h, p, leftFrac, 8)
		return p
	}
	cp := hBisectMultilevel(ch, leftFrac)
	p := make([]uint8, h.NV())
	for v := range p {
		p[v] = cp[cmap[v]]
	}
	hFMRefine(h, p, leftFrac, 4)
	return p
}

// coarsen matches each vertex with the unmatched vertex it shares the
// most net weight with (inner-product matching).
func (h *Hypergraph) coarsen() (*Hypergraph, []int32) {
	nv := h.NV()
	match := make([]int32, nv)
	for i := range match {
		match[i] = -1
	}
	score := map[int32]float64{}
	for v := 0; v < nv; v++ {
		if match[v] >= 0 {
			continue
		}
		for k := range score {
			delete(score, k)
		}
		for j := h.VX[v]; j < h.VX[v+1]; j++ {
			n := h.Nets[j]
			sz := float64(h.NX[n+1] - h.NX[n])
			for pj := h.NX[n]; pj < h.NX[n+1]; pj++ {
				u := h.Pins[pj]
				if int(u) != v && match[u] < 0 {
					score[u] += h.NWt[n] / (sz - 1)
				}
			}
		}
		best := int32(-1)
		bestS := 0.0
		for u, s := range score {
			if s > bestS || (s == bestS && best >= 0 && u < best) {
				bestS = s
				best = u
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = int32(v)
		} else {
			match[v] = int32(v)
		}
	}
	cmap := make([]int32, nv)
	nc := int32(0)
	for v := 0; v < nv; v++ {
		if int(match[v]) >= v {
			cmap[v] = nc
			if int(match[v]) != v {
				cmap[match[v]] = nc
			}
			nc++
		}
	}
	ch := &Hypergraph{VWt: make([]float64, nc)}
	for v := 0; v < nv; v++ {
		ch.VWt[cmap[v]] += h.VWt[v]
	}
	// Remap nets; drop singletons; merge identical pin sets.
	var pinLists [][]int32
	netWts := []float64{}
	seenNets := map[string]int{}
	var keyBuf []byte
	for n := 0; n < h.NN(); n++ {
		set := map[int32]bool{}
		for j := h.NX[n]; j < h.NX[n+1]; j++ {
			set[cmap[h.Pins[j]]] = true
		}
		if len(set) < 2 {
			continue
		}
		pins := make([]int32, 0, len(set))
		for p := range set {
			pins = append(pins, p)
		}
		sort.Slice(pins, func(a, b int) bool { return pins[a] < pins[b] })
		keyBuf = keyBuf[:0]
		for _, p := range pins {
			keyBuf = append(keyBuf, byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
		}
		if idx, ok := seenNets[string(keyBuf)]; ok {
			netWts[idx] += h.NWt[n]
			continue
		}
		seenNets[string(keyBuf)] = len(pinLists)
		pinLists = append(pinLists, pins)
		netWts = append(netWts, h.NWt[n])
	}
	ch.buildFromPins(pinLists)
	copy(ch.NWt, netWts)
	return ch, cmap
}

func (h *Hypergraph) sub(part []uint8, side uint8) (*Hypergraph, []int32) {
	var ids []int32
	local := make([]int32, h.NV())
	for i := range local {
		local[i] = -1
	}
	for v := 0; v < h.NV(); v++ {
		if part[v] == side {
			local[v] = int32(len(ids))
			ids = append(ids, int32(v))
		}
	}
	sh := &Hypergraph{VWt: make([]float64, len(ids))}
	for li, v := range ids {
		sh.VWt[li] = h.VWt[v]
	}
	var pinLists [][]int32
	var netWts []float64
	for n := 0; n < h.NN(); n++ {
		var pins []int32
		for j := h.NX[n]; j < h.NX[n+1]; j++ {
			if lp := local[h.Pins[j]]; lp >= 0 {
				pins = append(pins, lp)
			}
		}
		if len(pins) >= 2 {
			pinLists = append(pinLists, pins)
			netWts = append(netWts, h.NWt[n])
		}
	}
	sh.buildFromPins(pinLists)
	copy(sh.NWt, netWts)
	return sh, ids
}

func hGreedyGrow(h *Hypergraph, leftFrac float64) []uint8 {
	nv := h.NV()
	p := make([]uint8, nv)
	for i := range p {
		p[i] = 1
	}
	if nv == 0 {
		return p
	}
	total := 0.0
	for _, w := range h.VWt {
		total += w
	}
	target := total * leftFrac
	acc := 0.0
	visited := make([]bool, nv)
	queue := []int32{0}
	visited[0] = true
	for len(queue) > 0 && acc < target {
		v := queue[0]
		queue = queue[1:]
		p[v] = 0
		acc += h.VWt[v]
		for j := h.VX[v]; j < h.VX[v+1]; j++ {
			n := h.Nets[j]
			for pj := h.NX[n]; pj < h.NX[n+1]; pj++ {
				u := h.Pins[pj]
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
		if len(queue) == 0 && acc < target {
			for u := 0; u < nv; u++ {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, int32(u))
					break
				}
			}
		}
	}
	return p
}

// hFMRefine improves a hypergraph bisection with FM passes using the
// standard net-based gain: moving v helps when it empties its side of a
// net and hurts when it breaks a pure net.
func hFMRefine(h *Hypergraph, p []uint8, leftFrac float64, passes int) {
	nv := h.NV()
	total := 0.0
	maxVW := 0.0
	for _, w := range h.VWt {
		total += w
		if w > maxVW {
			maxVW = w
		}
	}
	target := total * leftFrac
	tol := total * 0.02
	if maxVW > tol {
		tol = maxVW
	}
	// side counts per net
	cnt := make([][2]int32, h.NN())
	recount := func() {
		for n := range cnt {
			cnt[n] = [2]int32{}
		}
		for n := 0; n < h.NN(); n++ {
			for j := h.NX[n]; j < h.NX[n+1]; j++ {
				cnt[n][p[h.Pins[j]]]++
			}
		}
	}
	gain := func(v int32) float64 {
		g := 0.0
		from := p[v]
		to := from ^ 1
		for j := h.VX[v]; j < h.VX[v+1]; j++ {
			n := h.Nets[j]
			if cnt[n][from] == 1 && cnt[n][to] > 0 {
				g += h.NWt[n]
			}
			if cnt[n][to] == 0 {
				g -= h.NWt[n]
			}
		}
		return g
	}
	leftW := 0.0
	for v := 0; v < nv; v++ {
		if p[v] == 0 {
			leftW += h.VWt[v]
		}
	}
	ver := make([]int64, nv)
	for pass := 0; pass < passes; pass++ {
		recount()
		var hp gainHeap
		moved := make([]bool, nv)
		for v := int32(0); v < int32(nv); v++ {
			onBoundary := false
			for j := h.VX[v]; j < h.VX[v+1]; j++ {
				n := h.Nets[j]
				if cnt[n][0] > 0 && cnt[n][1] > 0 {
					onBoundary = true
					break
				}
			}
			if onBoundary {
				hp.PushItem(gainItem{v: v, gain: gain(v), ver: ver[v]})
			}
		}
		var seq []int32
		cum, best := 0.0, 0.0
		bestLen := 0
		for hp.Len() > 0 {
			it := hp.PopItem()
			if moved[it.v] || it.ver != ver[it.v] {
				continue
			}
			w := h.VWt[it.v]
			newLeft := leftW
			if p[it.v] == 0 {
				newLeft -= w
			} else {
				newLeft += w
			}
			if newLeft < target-tol || newLeft > target+tol {
				continue
			}
			gv := gain(it.v)
			if gv < it.gain-1e-12 {
				ver[it.v]++
				hp.PushItem(gainItem{v: it.v, gain: gv, ver: ver[it.v]})
				continue
			}
			from := p[it.v]
			p[it.v] ^= 1
			leftW = newLeft
			moved[it.v] = true
			for j := h.VX[it.v]; j < h.VX[it.v+1]; j++ {
				n := h.Nets[j]
				cnt[n][from]--
				cnt[n][from^1]++
				for pj := h.NX[n]; pj < h.NX[n+1]; pj++ {
					u := h.Pins[pj]
					if !moved[u] {
						ver[u]++
						hp.PushItem(gainItem{v: u, gain: gain(u), ver: ver[u]})
					}
				}
			}
			seq = append(seq, it.v)
			cum += gv
			if cum > best {
				best = cum
				bestLen = len(seq)
			}
			if len(seq)-bestLen > 200 {
				break
			}
		}
		for i := len(seq) - 1; i >= bestLen; i-- {
			v := seq[i]
			if p[v] == 0 {
				leftW -= h.VWt[v]
			} else {
				leftW += h.VWt[v]
			}
			p[v] ^= 1
		}
		if best <= 0 {
			break
		}
	}
}
