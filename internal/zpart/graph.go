package zpart

import (
	"sort"

	"github.com/fastmath/pumi-go/internal/mesh"
)

// Graph is a weighted undirected graph in CSR form: the neighbors of
// vertex i are Adj[XAdj[i]:XAdj[i+1]] with matching edge weights in
// EWt. VWt holds vertex weights.
type Graph struct {
	XAdj []int32
	Adj  []int32
	EWt  []float64
	VWt  []float64
}

// N returns the vertex count.
func (g *Graph) N() int { return len(g.VWt) }

// TotalVWt returns the sum of vertex weights.
func (g *Graph) TotalVWt() float64 {
	t := 0.0
	for _, w := range g.VWt {
		t += w
	}
	return t
}

// EdgeCut returns the total weight of edges crossing parts under the
// given assignment (each edge counted once).
func (g *Graph) EdgeCut(part []int32) float64 {
	cut := 0.0
	for v := 0; v < g.N(); v++ {
		for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
			u := g.Adj[j]
			if int32(v) < u && part[v] != part[u] {
				cut += g.EWt[j]
			}
		}
	}
	return cut
}

// DualGraph extracts the element dual graph of a mesh: one graph vertex
// per element, edges between elements sharing a face (dimension
// mesh.Dim()-1), unit weights. It also returns the element handles in
// vertex order.
func DualGraph(m *mesh.Mesh) (*Graph, []mesh.Ent) {
	return BridgeGraph(m, m.Dim()-1)
}

// BridgeGraph extracts the element adjacency graph through shared
// entities of the given bridge dimension. Edge weights count the number
// of shared bridge entities (so vertex-bridged graphs weigh tighter
// couplings heavier).
func BridgeGraph(m *mesh.Mesh, bridgeDim int) (*Graph, []mesh.Ent) {
	var els []mesh.Ent
	index := map[mesh.Ent]int32{}
	for el := range m.Elements() {
		index[el] = int32(len(els))
		els = append(els, el)
	}
	n := len(els)
	type edge struct {
		u, v int32
	}
	weights := map[edge]float64{}
	for b := range m.Iter(bridgeDim) {
		adj := m.Adjacent(b, m.Dim())
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				u, v := index[adj[i]], index[adj[j]]
				if u > v {
					u, v = v, u
				}
				weights[edge{u, v}]++
			}
		}
	}
	deg := make([]int32, n+1)
	for e := range weights {
		deg[e.u+1]++
		deg[e.v+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	g := &Graph{
		XAdj: deg,
		Adj:  make([]int32, deg[n]),
		EWt:  make([]float64, deg[n]),
		VWt:  make([]float64, n),
	}
	for i := range g.VWt {
		g.VWt[i] = 1
	}
	fill := make([]int32, n)
	edges := make([]edge, 0, len(weights))
	for e := range weights {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].u != edges[b].u {
			return edges[a].u < edges[b].u
		}
		return edges[a].v < edges[b].v
	})
	for _, e := range edges {
		w := weights[e]
		pu := g.XAdj[e.u] + fill[e.u]
		g.Adj[pu] = e.v
		g.EWt[pu] = w
		fill[e.u]++
		pv := g.XAdj[e.v] + fill[e.v]
		g.Adj[pv] = e.u
		g.EWt[pv] = w
		fill[e.v]++
	}
	return g, els
}

// coarsen contracts the graph by heavy-edge matching and returns the
// coarse graph plus the fine-to-coarse vertex map.
func (g *Graph) coarsen() (*Graph, []int32) {
	n := g.N()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	// Visit vertices in order; match each with its heaviest unmatched
	// neighbor (deterministic).
	for v := 0; v < n; v++ {
		if match[v] >= 0 {
			continue
		}
		best := int32(-1)
		bestW := -1.0
		for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
			u := g.Adj[j]
			if match[u] >= 0 || u == int32(v) {
				continue
			}
			if g.EWt[j] > bestW {
				bestW = g.EWt[j]
				best = u
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = int32(v)
		} else {
			match[v] = int32(v)
		}
	}
	cmap := make([]int32, n)
	nc := int32(0)
	for v := 0; v < n; v++ {
		if int(match[v]) >= v {
			cmap[v] = nc
			if int(match[v]) != v {
				cmap[match[v]] = nc
			}
			nc++
		}
	}
	cg := &Graph{VWt: make([]float64, nc)}
	for v := 0; v < n; v++ {
		cg.VWt[cmap[v]] += g.VWt[v]
	}
	// Merge edges.
	type edge struct{ u, v int32 }
	weights := map[edge]float64{}
	for v := 0; v < n; v++ {
		cv := cmap[v]
		for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
			cu := cmap[g.Adj[j]]
			if cu == cv {
				continue
			}
			a, b := cv, cu
			if a > b {
				a, b = b, a
			}
			weights[edge{a, b}] += g.EWt[j] / 2 // each fine edge visited twice
		}
	}
	deg := make([]int32, nc+1)
	for e := range weights {
		deg[e.u+1]++
		deg[e.v+1]++
	}
	for i := int32(0); i < nc; i++ {
		deg[i+1] += deg[i]
	}
	cg.XAdj = deg
	cg.Adj = make([]int32, deg[nc])
	cg.EWt = make([]float64, deg[nc])
	fill := make([]int32, nc)
	edges := make([]edge, 0, len(weights))
	for e := range weights {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].u != edges[b].u {
			return edges[a].u < edges[b].u
		}
		return edges[a].v < edges[b].v
	})
	for _, e := range edges {
		w := weights[e]
		pu := cg.XAdj[e.u] + fill[e.u]
		cg.Adj[pu] = e.v
		cg.EWt[pu] = w
		fill[e.u]++
		pv := cg.XAdj[e.v] + fill[e.v]
		cg.Adj[pv] = e.u
		cg.EWt[pv] = w
		fill[e.v]++
	}
	return cg, cmap
}

// subgraph extracts the induced subgraph of the vertices with
// part[v]==side, returning it plus the local-to-global index map.
func (g *Graph) subgraph(part []uint8, side uint8) (*Graph, []int32) {
	var ids []int32
	local := make([]int32, g.N())
	for i := range local {
		local[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		if part[v] == side {
			local[v] = int32(len(ids))
			ids = append(ids, int32(v))
		}
	}
	sg := &Graph{VWt: make([]float64, len(ids))}
	deg := make([]int32, len(ids)+1)
	for li, v := range ids {
		sg.VWt[li] = g.VWt[v]
		for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
			if local[g.Adj[j]] >= 0 {
				deg[li+1]++
			}
		}
	}
	for i := 0; i < len(ids); i++ {
		deg[i+1] += deg[i]
	}
	sg.XAdj = deg
	sg.Adj = make([]int32, deg[len(ids)])
	sg.EWt = make([]float64, deg[len(ids)])
	fill := make([]int32, len(ids))
	for li, v := range ids {
		for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
			lu := local[g.Adj[j]]
			if lu < 0 {
				continue
			}
			p := sg.XAdj[li] + fill[li]
			sg.Adj[p] = lu
			sg.EWt[p] = g.EWt[j]
			fill[li]++
		}
	}
	return sg, ids
}
