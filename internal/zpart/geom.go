package zpart

import (
	"fmt"
	"math"
	"sort"

	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/vec"
)

// GeomInput is the element view geometric partitioners consume: one
// representative point (typically the centroid) and a weight per
// element. Weights default to 1 when nil.
type GeomInput struct {
	Pts []vec.V
	Wts []float64
}

func (in GeomInput) weight(i int) float64 {
	if in.Wts == nil {
		return 1
	}
	return in.Wts[i]
}

// Centroids extracts the geometric input of a mesh's elements, plus the
// element handles in matching order.
func Centroids(m *mesh.Mesh) (GeomInput, []mesh.Ent) {
	var in GeomInput
	var els []mesh.Ent
	for el := range m.Elements() {
		in.Pts = append(in.Pts, m.Centroid(el))
		els = append(els, el)
	}
	return in, els
}

// RCB partitions by recursive coordinate bisection: split the longest
// bounding-box axis at the weighted median, recursing with proportional
// part counts (any nparts, not just powers of two).
func RCB(in GeomInput, nparts int) []int32 {
	return recursiveBisect(in, nparts, splitLongestAxis)
}

// RIB partitions by recursive inertial bisection: project onto the
// principal inertial axis and split at the weighted median. It adapts
// to non-axis-aligned geometry better than RCB at slightly higher cost.
func RIB(in GeomInput, nparts int) []int32 {
	return recursiveBisect(in, nparts, splitInertialAxis)
}

type splitter func(in GeomInput, idx []int, leftFrac float64) (left, right []int)

func recursiveBisect(in GeomInput, nparts int, split splitter) []int32 {
	if nparts < 1 {
		panic(fmt.Sprintf("zpart: nparts = %d", nparts))
	}
	out := make([]int32, len(in.Pts))
	idx := make([]int, len(in.Pts))
	for i := range idx {
		idx[i] = i
	}
	var rec func(idx []int, base, k int)
	rec = func(idx []int, base, k int) {
		if k == 1 {
			for _, i := range idx {
				out[i] = int32(base)
			}
			return
		}
		kl := k / 2
		left, right := split(in, idx, float64(kl)/float64(k))
		rec(left, base, kl)
		rec(right, base+kl, k-kl)
	}
	rec(idx, 0, nparts)
	return out
}

// splitAtWeightedMedian orders idx by the given keys and cuts so the
// left side holds ~leftFrac of the total weight.
func splitAtWeightedMedian(in GeomInput, idx []int, key []float64, leftFrac float64) (left, right []int) {
	ord := make([]int, len(idx))
	copy(ord, idx)
	sort.SliceStable(ord, func(a, b int) bool {
		if key[ord[a]] != key[ord[b]] {
			return key[ord[a]] < key[ord[b]]
		}
		return ord[a] < ord[b]
	})
	total := 0.0
	for _, i := range ord {
		total += in.weight(i)
	}
	target := total * leftFrac
	acc := 0.0
	cut := 0
	for cut < len(ord)-1 {
		w := in.weight(ord[cut])
		if acc+w > target && acc > 0 {
			break
		}
		acc += w
		cut++
	}
	if cut == 0 {
		cut = 1
	}
	return ord[:cut], ord[cut:]
}

func splitLongestAxis(in GeomInput, idx []int, leftFrac float64) ([]int, []int) {
	lo := vec.V{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := vec.V{X: math.Inf(-1), Y: math.Inf(-1), Z: math.Inf(-1)}
	for _, i := range idx {
		p := in.Pts[i]
		for c := 0; c < 3; c++ {
			if p.Comp(c) < lo.Comp(c) {
				lo = lo.WithComp(c, p.Comp(c))
			}
			if p.Comp(c) > hi.Comp(c) {
				hi = hi.WithComp(c, p.Comp(c))
			}
		}
	}
	axis := 0
	best := -1.0
	for c := 0; c < 3; c++ {
		if d := hi.Comp(c) - lo.Comp(c); d > best {
			best = d
			axis = c
		}
	}
	key := make([]float64, len(in.Pts))
	for _, i := range idx {
		key[i] = in.Pts[i].Comp(axis)
	}
	return splitAtWeightedMedian(in, idx, key, leftFrac)
}

func splitInertialAxis(in GeomInput, idx []int, leftFrac float64) ([]int, []int) {
	// Weighted centroid.
	var c vec.V
	tw := 0.0
	for _, i := range idx {
		w := in.weight(i)
		c = c.Add(in.Pts[i].Scale(w))
		tw += w
	}
	if tw == 0 {
		tw = 1
	}
	c = c.Scale(1 / tw)
	// Covariance matrix (symmetric 3x3).
	var m [3][3]float64
	for _, i := range idx {
		d := in.Pts[i].Sub(c)
		w := in.weight(i)
		v := [3]float64{d.X, d.Y, d.Z}
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				m[a][b] += w * v[a] * v[b]
			}
		}
	}
	// Principal axis by power iteration with a deterministic start.
	axis := [3]float64{1, 1, 0.5}
	for iter := 0; iter < 50; iter++ {
		var next [3]float64
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				next[a] += m[a][b] * axis[b]
			}
		}
		n := math.Sqrt(next[0]*next[0] + next[1]*next[1] + next[2]*next[2])
		if n < 1e-30 {
			// Degenerate cloud: fall back to the longest axis.
			return splitLongestAxis(in, idx, leftFrac)
		}
		for a := 0; a < 3; a++ {
			axis[a] = next[a] / n
		}
	}
	dir := vec.V{X: axis[0], Y: axis[1], Z: axis[2]}
	key := make([]float64, len(in.Pts))
	for _, i := range idx {
		key[i] = in.Pts[i].Dot(dir)
	}
	return splitAtWeightedMedian(in, idx, key, leftFrac)
}
