// Package zpart provides the global partitioners the paper's evaluation
// uses as baselines and initial conditions for ParMA: fast geometric
// methods (recursive coordinate bisection, recursive inertial
// bisection) and the more powerful multilevel graph and hypergraph
// methods (the role Zoltan's PHG plays in the paper's test T0).
//
// All partitioners are serial: they take an element-level view of one
// mesh (points, a dual graph, or a hypergraph) plus optional weights
// and return an element-to-part assignment, which the caller turns into
// a migration plan. This mirrors the paper's workflow of creating the
// initial partition globally and then improving it with ParMA.
package zpart
