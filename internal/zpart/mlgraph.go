package zpart

import (
	"container/heap"
	"sort"
)

// MLGraph partitions the graph into nparts by multilevel recursive
// bisection: heavy-edge-matching coarsening, greedy-growing initial
// bisection, and Fiduccia–Mattheyses boundary refinement during
// uncoarsening. This is the role graph partitioners (ParMETIS/Zoltan
// graph) play in the paper's workflow.
func MLGraph(g *Graph, nparts int) []int32 {
	out := make([]int32, g.N())
	idx := make([]int32, g.N())
	for i := range idx {
		idx[i] = int32(i)
	}
	mlRecurse(g, idx, 0, nparts, out)
	return out
}

func mlRecurse(g *Graph, globalIDs []int32, base, k int, out []int32) {
	if k == 1 {
		for _, gid := range globalIDs {
			out[gid] = int32(base)
		}
		return
	}
	kl := k / 2
	side := bisectMultilevel(g, float64(kl)/float64(k))
	for s := uint8(0); s < 2; s++ {
		sg, ids := g.subgraph(side, s)
		sub := make([]int32, len(ids))
		for i, li := range ids {
			sub[i] = globalIDs[li]
		}
		if s == 0 {
			mlRecurse(sg, sub, base, kl, out)
		} else {
			mlRecurse(sg, sub, base+kl, k-kl, out)
		}
	}
}

const coarsenTarget = 64

// bisectMultilevel returns a 0/1 side assignment with ~leftFrac of the
// vertex weight on side 0.
func bisectMultilevel(g *Graph, leftFrac float64) []uint8 {
	if g.N() <= coarsenTarget {
		p := greedyGrow(g, leftFrac)
		fmRefine(g, p, leftFrac, 8)
		return p
	}
	cg, cmap := g.coarsen()
	if cg.N() >= g.N()*9/10 {
		// Matching stalled (e.g. star graphs); bisect directly.
		p := greedyGrow(g, leftFrac)
		fmRefine(g, p, leftFrac, 8)
		return p
	}
	cp := bisectMultilevel(cg, leftFrac)
	p := make([]uint8, g.N())
	for v := range p {
		p[v] = cp[cmap[v]]
	}
	fmRefine(g, p, leftFrac, 4)
	return p
}

// greedyGrow seeds side 0 from a pseudo-peripheral vertex and grows by
// BFS until it holds ~leftFrac of the weight.
func greedyGrow(g *Graph, leftFrac float64) []uint8 {
	n := g.N()
	p := make([]uint8, n)
	for i := range p {
		p[i] = 1
	}
	if n == 0 {
		return p
	}
	seed := pseudoPeripheral(g)
	target := g.TotalVWt() * leftFrac
	acc := 0.0
	visited := make([]bool, n)
	queue := []int32{seed}
	visited[seed] = true
	for len(queue) > 0 && acc < target {
		v := queue[0]
		queue = queue[1:]
		p[v] = 0
		acc += g.VWt[v]
		for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
			u := g.Adj[j]
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
		if len(queue) == 0 && acc < target {
			// Disconnected: restart from the first unvisited vertex.
			for u := 0; u < n; u++ {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, int32(u))
					break
				}
			}
		}
	}
	return p
}

func pseudoPeripheral(g *Graph) int32 {
	seed := int32(0)
	for iter := 0; iter < 2; iter++ {
		dist := make([]int32, g.N())
		for i := range dist {
			dist[i] = -1
		}
		dist[seed] = 0
		queue := []int32{seed}
		last := seed
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			last = v
			for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
				u := g.Adj[j]
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		seed = last
	}
	return seed
}

// gainHeap is a max-heap of (vertex, gain) with lazy invalidation.
type gainItem struct {
	v    int32
	gain float64
	ver  int64
}

type gainHeap []gainItem

func (h gainHeap) Len() int             { return len(h) }
func (h gainHeap) Less(i, j int) bool   { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)        { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)          { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() any            { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h gainHeap) PeekGain() float64    { return h[0].gain }
func (h *gainHeap) PopItem() gainItem   { return heap.Pop(h).(gainItem) }
func (h *gainHeap) PushItem(i gainItem) { heap.Push(h, i) }

// fmRefine improves a bisection in place with FM passes: vertices move
// to the other side in descending gain order (each at most once per
// pass) subject to a weight balance constraint; the best prefix of the
// move sequence is kept.
func fmRefine(g *Graph, p []uint8, leftFrac float64, passes int) {
	n := g.N()
	total := g.TotalVWt()
	target := total * leftFrac
	// Allowed deviation: 2% of total weight or the largest vertex,
	// whichever is bigger (otherwise single heavy vertices jam).
	maxVW := 0.0
	for _, w := range g.VWt {
		if w > maxVW {
			maxVW = w
		}
	}
	tol := total * 0.02
	if maxVW > tol {
		tol = maxVW
	}
	gain := func(v int32) float64 {
		ext, inn := 0.0, 0.0
		for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
			if p[g.Adj[j]] == p[v] {
				inn += g.EWt[j]
			} else {
				ext += g.EWt[j]
			}
		}
		return ext - inn
	}
	leftW := 0.0
	for v := 0; v < n; v++ {
		if p[v] == 0 {
			leftW += g.VWt[v]
		}
	}
	ver := make([]int64, n)
	for pass := 0; pass < passes; pass++ {
		var h gainHeap
		moved := make([]bool, n)
		// Seed with boundary vertices.
		for v := int32(0); v < int32(n); v++ {
			boundary := false
			for j := g.XAdj[v]; j < g.XAdj[v+1]; j++ {
				if p[g.Adj[j]] != p[v] {
					boundary = true
					break
				}
			}
			if boundary {
				h.PushItem(gainItem{v: v, gain: gain(v), ver: ver[v]})
			}
		}
		type moveRec struct {
			v int32
		}
		var seq []moveRec
		cum, best := 0.0, 0.0
		bestLen := 0
		for h.Len() > 0 {
			it := h.PopItem()
			if moved[it.v] || it.ver != ver[it.v] {
				continue
			}
			// Balance check.
			w := g.VWt[it.v]
			newLeft := leftW
			if p[it.v] == 0 {
				newLeft -= w
			} else {
				newLeft += w
			}
			if newLeft < target-tol || newLeft > target+tol {
				continue
			}
			// Recompute gain (may be stale).
			gv := gain(it.v)
			if gv < it.gain-1e-12 {
				ver[it.v]++
				h.PushItem(gainItem{v: it.v, gain: gv, ver: ver[it.v]})
				continue
			}
			// Apply the move.
			p[it.v] ^= 1
			leftW = newLeft
			moved[it.v] = true
			seq = append(seq, moveRec{v: it.v})
			cum += gv
			if cum > best {
				best = cum
				bestLen = len(seq)
			}
			for j := g.XAdj[it.v]; j < g.XAdj[it.v+1]; j++ {
				u := g.Adj[j]
				if !moved[u] {
					ver[u]++
					h.PushItem(gainItem{v: u, gain: gain(u), ver: ver[u]})
				}
			}
			if len(seq)-bestLen > 200 {
				break // long negative tail; stop early
			}
		}
		// Roll back past the best prefix.
		for i := len(seq) - 1; i >= bestLen; i-- {
			v := seq[i].v
			if p[v] == 0 {
				leftW -= g.VWt[v]
			} else {
				leftW += g.VWt[v]
			}
			p[v] ^= 1
		}
		if best <= 0 {
			break
		}
	}
}

// PartSizes sums vertex weights per part.
func PartSizes(g *Graph, part []int32, nparts int) []float64 {
	sizes := make([]float64, nparts)
	for v := 0; v < g.N(); v++ {
		sizes[part[v]] += g.VWt[v]
	}
	return sizes
}

// sortedCopy is a small test helper shared across files.
func sortedCopy(v []int32) []int32 {
	out := make([]int32, len(v))
	copy(out, v)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
