// Package meshio serializes meshes and partition assignments to a
// compact binary format, so command-line tools can stage workflows
// (generate, partition, improve, adapt) the way the paper's tools pass
// meshes between steps. The format stores the full topology (downward
// adjacencies per dimension), coordinates, and classification; parallel
// state (remote copies) is not stored — a loaded mesh is a serial part,
// partitioned afresh.
package meshio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/vec"
)

const (
	magicV1 = "PUMIGO01" // topology only
	magicV2 = "PUMIGO02" // topology + numeric tag data (fields included)
)

// Write serializes a mesh.
func Write(w io.Writer, m *mesh.Mesh) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicV2); err != nil {
		return err
	}
	wu32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	wu32(uint32(m.Dim()))

	// Vertices: assign sequential ids in iteration order.
	index := map[mesh.Ent]uint32{}
	wu32(uint32(m.Count(0)))
	for v := range m.Iter(0) {
		index[v] = uint32(len(index))
		p := m.Coord(v)
		binary.Write(bw, binary.LittleEndian, [3]float64{p.X, p.Y, p.Z})
		writeClassif(bw, m.Classification(v))
	}
	// Higher dimensions: entities as vertex tuples (set semantics are
	// recovered by BuildFromVerts on load; the canonical order is
	// preserved by storing Verts order).
	for d := 1; d <= m.Dim(); d++ {
		wu32(uint32(m.Count(d)))
		for e := range m.Iter(d) {
			bw.WriteByte(byte(e.T))
			verts := m.Verts(e)
			wu32(uint32(len(verts)))
			for _, v := range verts {
				wu32(index[v])
			}
			writeClassif(bw, m.Classification(e))
		}
	}
	if err := writeTags(bw, m); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a mesh against the given model (may be nil).
func Read(r io.Reader, model *gmi.Model) (*mesh.Mesh, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicV1))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("meshio: reading header: %w", err)
	}
	version := 0
	switch string(head) {
	case magicV1:
		version = 1
	case magicV2:
		version = 2
	default:
		return nil, fmt.Errorf("meshio: bad magic %q", head)
	}
	var dim uint32
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	if dim < 1 || dim > 3 {
		return nil, fmt.Errorf("meshio: bad dimension %d", dim)
	}
	m := mesh.New(model, int(dim))
	var nv uint32
	if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
		return nil, err
	}
	verts := make([]mesh.Ent, nv)
	for i := range verts {
		var p [3]float64
		if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
			return nil, err
		}
		cls, err := readClassif(br)
		if err != nil {
			return nil, err
		}
		verts[i] = m.CreateVertex(cls, vec.V{X: p[0], Y: p[1], Z: p[2]})
	}
	for d := 1; d <= int(dim); d++ {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		for i := uint32(0); i < n; i++ {
			tb, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			t := mesh.Type(tb)
			if t >= mesh.TypeCount || t.Dim() != d {
				return nil, fmt.Errorf("meshio: entity type %d in dimension %d section", tb, d)
			}
			var k uint32
			if err := binary.Read(br, binary.LittleEndian, &k); err != nil {
				return nil, err
			}
			if int(k) != t.VertCount() {
				return nil, fmt.Errorf("meshio: %v with %d vertices", t, k)
			}
			vs := make([]mesh.Ent, k)
			for j := range vs {
				var vi uint32
				if err := binary.Read(br, binary.LittleEndian, &vi); err != nil {
					return nil, err
				}
				if vi >= nv {
					return nil, fmt.Errorf("meshio: vertex index %d out of range", vi)
				}
				vs[j] = verts[vi]
			}
			cls, err := readClassif(br)
			if err != nil {
				return nil, err
			}
			e := m.BuildFromVerts(t, vs, cls)
			m.SetClassification(e, cls)
		}
	}
	if version >= 2 {
		if err := readTags(br, m); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func writeClassif(w io.Writer, c gmi.Ref) {
	binary.Write(w, binary.LittleEndian, int8(c.Dim))
	binary.Write(w, binary.LittleEndian, c.Tag)
}

func readClassif(r io.Reader) (gmi.Ref, error) {
	var d int8
	var tag int32
	if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
		return gmi.NoRef, err
	}
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return gmi.NoRef, err
	}
	return gmi.Ref{Dim: d, Tag: tag}, nil
}

// SaveFile writes a mesh to the named file.
func SaveFile(path string, m *mesh.Mesh) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, m); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a mesh from the named file.
func LoadFile(path string, model *gmi.Model) (*mesh.Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, model)
}

// WriteAssignment stores an element-to-part assignment aligned with the
// mesh's element iteration order.
func WriteAssignment(w io.Writer, parts []int32) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("PUMIPT01"); err != nil {
		return err
	}
	binary.Write(bw, binary.LittleEndian, uint32(len(parts)))
	for _, p := range parts {
		binary.Write(bw, binary.LittleEndian, p)
	}
	return bw.Flush()
}

// ReadAssignment loads an element-to-part assignment.
func ReadAssignment(r io.Reader) ([]int32, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != "PUMIPT01" {
		return nil, fmt.Errorf("meshio: bad assignment magic %q", head)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	out := make([]int32, n)
	if err := binary.Read(br, binary.LittleEndian, &out); err != nil {
		return nil, err
	}
	// Reject corrupt part ids here, at the serial load boundary: a
	// negative id surviving to PlansFromAssignment would blow up deep
	// inside a collective migration instead of failing every rank with
	// a structured error.
	for i, p := range out {
		if p < 0 {
			return nil, fmt.Errorf("meshio: assignment entry %d has negative part id %d", i, p)
		}
	}
	return out, nil
}

// writeTags appends the numeric tag section: a tag directory followed,
// per dimension and per entity in iteration order, by that entity's
// tagged values. TagAny values are process-local and not serialized.
func writeTags(w *bufio.Writer, m *mesh.Mesh) error {
	var movable []*ds.Tag
	for _, t := range m.Tags.Tags() {
		switch t.Kind {
		case ds.TagInt, ds.TagFloat, ds.TagIntSlice, ds.TagFloatSlice, ds.TagBytes:
			movable = append(movable, t)
		}
	}
	binary.Write(w, binary.LittleEndian, uint32(len(movable)))
	for _, t := range movable {
		binary.Write(w, binary.LittleEndian, uint32(len(t.Name)))
		w.WriteString(t.Name)
		w.WriteByte(byte(t.Kind))
		binary.Write(w, binary.LittleEndian, uint32(t.Size))
	}
	for d := 0; d <= m.Dim(); d++ {
		for e := range m.Iter(d) {
			present := uint8(0)
			for _, t := range movable {
				if m.Tags.Has(t, e) {
					present++
				}
			}
			w.WriteByte(present)
			for ti, t := range movable {
				if !m.Tags.Has(t, e) {
					continue
				}
				w.WriteByte(byte(ti))
				switch t.Kind {
				case ds.TagInt:
					v, _ := m.Tags.GetInt(t, e)
					binary.Write(w, binary.LittleEndian, v)
				case ds.TagFloat:
					v, _ := m.Tags.GetFloat(t, e)
					binary.Write(w, binary.LittleEndian, v)
				case ds.TagIntSlice:
					v, _ := m.Tags.GetInts(t, e)
					binary.Write(w, binary.LittleEndian, v)
				case ds.TagFloatSlice:
					v, _ := m.Tags.GetFloats(t, e)
					binary.Write(w, binary.LittleEndian, v)
				case ds.TagBytes:
					v, _ := m.Tags.GetBytes(t, e)
					w.Write(v)
				}
			}
		}
	}
	return nil
}

// readTags restores the tag section written by writeTags. Entity order
// matches the write order because BuildFromVerts created entities in
// file order.
func readTags(r *bufio.Reader, m *mesh.Mesh) error {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("meshio: tag directory: %w", err)
	}
	if n > 255 {
		return fmt.Errorf("meshio: %d tags", n)
	}
	tags := make([]*ds.Tag, n)
	for i := range tags {
		var nameLen uint32
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 4096 {
			return fmt.Errorf("meshio: tag name of %d bytes", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return err
		}
		kindB, err := r.ReadByte()
		if err != nil {
			return err
		}
		var size uint32
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return err
		}
		tag := m.Tags.Find(string(name))
		if tag == nil {
			tag, err = m.Tags.Create(string(name), ds.TagKind(kindB), int(size))
			if err != nil {
				return fmt.Errorf("meshio: recreating tag %q: %w", name, err)
			}
		}
		tags[i] = tag
	}
	for d := 0; d <= m.Dim(); d++ {
		for e := range m.Iter(d) {
			present, err := r.ReadByte()
			if err != nil {
				return err
			}
			for k := 0; k < int(present); k++ {
				ti, err := r.ReadByte()
				if err != nil {
					return err
				}
				if int(ti) >= len(tags) {
					return fmt.Errorf("meshio: tag index %d out of range", ti)
				}
				tag := tags[ti]
				switch tag.Kind {
				case ds.TagInt:
					var v int64
					if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
						return err
					}
					m.Tags.SetInt(tag, e, v)
				case ds.TagFloat:
					var v float64
					if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
						return err
					}
					m.Tags.SetFloat(tag, e, v)
				case ds.TagIntSlice:
					v := make([]int64, tag.Size)
					if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
						return err
					}
					m.Tags.SetInts(tag, e, v)
				case ds.TagFloatSlice:
					v := make([]float64, tag.Size)
					if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
						return err
					}
					m.Tags.SetFloats(tag, e, v)
				case ds.TagBytes:
					v := make([]byte, tag.Size)
					if _, err := io.ReadFull(r, v); err != nil {
						return err
					}
					m.Tags.SetBytes(tag, e, v)
				}
			}
		}
	}
	return nil
}
