package meshio

import (
	"testing"

	"github.com/fastmath/pumi-go/internal/pcu"
	"github.com/fastmath/pumi-go/internal/telemetry"
)

// TestCheckpointMetered checks a metered checkpoint round trip records
// save/load durations and per-part file sizes.
func TestCheckpointMetered(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	const ranks = 4
	_, err := pcu.RunOpt(ranks, pcu.Options{Metrics: reg}, func(ctx *pcu.Ctx) error {
		dm := buildDistributed(ctx, 1)
		if err := SaveCheckpoint(dir, dm, Cursor{Phase: "test"}); err != nil {
			return err
		}
		_, _, err := LoadCheckpoint(dir, ctx, dm.Model)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Histogram("meshio.checkpoint.save.ns").Count(); n != ranks {
		t.Errorf("save durations = %d, want %d", n, ranks)
	}
	if n := reg.Histogram("meshio.checkpoint.load.ns").Count(); n != ranks {
		t.Errorf("load durations = %d, want %d", n, ranks)
	}
	// One part file per rank in each direction, identical bytes.
	saved := reg.Histogram("meshio.checkpoint.save.bytes")
	loaded := reg.Histogram("meshio.checkpoint.load.bytes")
	if saved.Count() != ranks || loaded.Count() != ranks {
		t.Errorf("file-size observations save=%d load=%d, want %d each", saved.Count(), loaded.Count(), ranks)
	}
	if saved.Sum() == 0 || saved.Sum() != loaded.Sum() {
		t.Errorf("checkpoint bytes saved=%d loaded=%d, want equal and nonzero", saved.Sum(), loaded.Sum())
	}
}
