package meshio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/hwtopo"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// buildDistributed distributes a 4x2x2 box into nparts slabs by X and
// tags every element with a gid-derived weight, so checkpoint equality
// can be checked by content, not just by counts.
func buildDistributed(ctx *pcu.Ctx, k int) *partition.DMesh {
	model := gmi.Box(4, 1, 1)
	var serial *mesh.Mesh
	if ctx.Rank() == 0 {
		serial = meshgen.Box3D(model, 4, 2, 2)
	}
	dm := partition.Adopt(ctx, model.Model, 3, serial, k)
	nparts := dm.NParts()
	var assign map[mesh.Ent]int32
	if ctx.Rank() == 0 {
		assign = map[mesh.Ent]int32{}
		for el := range serial.Elements() {
			p := int32(serial.Centroid(el).X / 4.0 * float64(nparts))
			if int(p) >= nparts {
				p = int32(nparts - 1)
			}
			assign[el] = p
		}
	}
	partition.Migrate(dm, partition.PlansFromAssignment(dm, assign))
	for _, p := range dm.Parts {
		m := p.M
		tag, err := m.Tags.Create("ckpt-w", ds.TagInt, 1)
		if err != nil {
			tag = m.Tags.Find("ckpt-w")
		}
		for el := range m.Elements() {
			m.Tags.SetInt(tag, el, p.Gid(el)%7)
		}
	}
	return dm
}

// partSignature summarizes one part's distributed state for equality
// checks: per-dim gid sets with owner and residence, plus element tags.
func partSignature(p *partition.Part, dim int) map[string]string {
	m := p.M
	sig := map[string]string{}
	for d := 0; d <= dim; d++ {
		for e := range m.Iter(d) {
			key := fmt.Sprintf("d%d-g%d", d, p.Gid(e))
			res := m.Residence(e).Values()
			sig[key] = fmt.Sprintf("own=%d res=%v", m.Owner(e), res)
		}
	}
	tag := m.Tags.Find("ckpt-w")
	if tag != nil {
		for e := range m.Elements() {
			v, _ := m.Tags.GetInt(tag, e)
			sig[fmt.Sprintf("w-g%d", p.Gid(e))] = fmt.Sprintf("%d", v)
		}
	}
	return sig
}

func TestCheckpointRoundTripSameWorld(t *testing.T) {
	dir := t.TempDir()
	cur := Cursor{Phase: "parma", Level: 2, Iter: 7}
	_, err := pcu.RunOpt(4, pcu.Options{Topo: hwtopo.Cluster(2, 2)}, func(ctx *pcu.Ctx) error {
		dm := buildDistributed(ctx, 1)
		if err := SaveCheckpoint(dir, dm, cur); err != nil {
			return err
		}
		dm2, cur2, err := LoadCheckpoint(dir, ctx, dm.Model)
		if err != nil {
			return err
		}
		if cur2 != cur {
			return fmt.Errorf("cursor %+v round-tripped as %+v", cur, cur2)
		}
		if dm2.K != dm.K || dm2.NParts() != dm.NParts() || dm2.Dim != dm.Dim {
			return fmt.Errorf("layout changed: k=%d nparts=%d dim=%d", dm2.K, dm2.NParts(), dm2.Dim)
		}
		for i := range dm.Parts {
			want := partSignature(dm.Parts[i], dm.Dim)
			got := partSignature(dm2.Parts[i], dm2.Dim)
			if len(want) != len(got) {
				return fmt.Errorf("part %d: %d state entries round-tripped as %d", i, len(want), len(got))
			}
			for k, v := range want {
				if got[k] != v {
					return fmt.Errorf("part %d: %s was %q, loaded %q", i, k, v, got[k])
				}
			}
		}
		return partition.Verify(dm2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRestartOnDifferentRankCount(t *testing.T) {
	dir := t.TempDir()
	var wantElems int64
	// Save from a 4-rank world (4 parts)...
	_, err := pcu.RunOn(4, hwtopo.Cluster(2, 2), func(ctx *pcu.Ctx) error {
		dm := buildDistributed(ctx, 1)
		var local int64
		for _, p := range dm.Parts {
			local += int64(p.M.Count(dm.Dim))
		}
		wantElems = pcu.SumInt64(ctx, local)
		return SaveCheckpoint(dir, dm, Cursor{Phase: "parma", Level: 3, Iter: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...restart on a 2-rank world: 2 parts per rank.
	_, err = pcu.RunOn(2, hwtopo.Cluster(2, 1), func(ctx *pcu.Ctx) error {
		model := gmi.Box(4, 1, 1)
		dm, cur, err := LoadCheckpoint(dir, ctx, model.Model)
		if err != nil {
			return err
		}
		if cur.Level != 3 || cur.Iter != 1 {
			return fmt.Errorf("cursor lost: %+v", cur)
		}
		if dm.K != 2 || dm.NParts() != 4 {
			return fmt.Errorf("want 4 parts as 2 per rank, got k=%d nparts=%d", dm.K, dm.NParts())
		}
		var local int64
		for _, p := range dm.Parts {
			local += int64(p.M.Count(dm.Dim))
		}
		if got := pcu.SumInt64(ctx, local); got != wantElems {
			return fmt.Errorf("global element count %d, want %d", got, wantElems)
		}
		return partition.Verify(dm)
	})
	if err != nil {
		t.Fatal(err)
	}
	// A rank count that does not divide the part count must fail
	// cleanly on every rank.
	err = pcu.Run(3, func(ctx *pcu.Ctx) error {
		model := gmi.Box(4, 1, 1)
		_, _, err := LoadCheckpoint(dir, ctx, model.Model)
		if err == nil || !strings.Contains(err.Error(), "divisible") {
			return fmt.Errorf("want divisibility error, got %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointSequenceAdvancesAndRetainsTwoEpochs(t *testing.T) {
	dir := t.TempDir()
	err := pcu.Run(2, func(ctx *pcu.Ctx) error {
		dm := buildDistributed(ctx, 1)
		for iter := 1; iter <= 3; iter++ {
			if err := SaveCheckpoint(dir, dm, Cursor{Iter: iter}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Seq != 3 || man.Cursor.Iter != 3 {
		t.Fatalf("third save: seq=%d cursor=%+v", man.Seq, man.Cursor)
	}
	prev, err := readManifestFile(dir, prevManifestName)
	if err != nil {
		t.Fatalf("previous epoch's manifest not retained: %v", err)
	}
	if prev.Seq != 2 || prev.Cursor.Iter != 2 {
		t.Fatalf("previous epoch should be generation 2: seq=%d cursor=%+v", prev.Seq, prev.Cursor)
	}
	// Exactly the last two generations' part files stay on disk.
	paths, _ := filepath.Glob(filepath.Join(dir, partFileGlobStar))
	if len(paths) != 4 {
		t.Fatalf("want 4 part files (2 generations x 2 parts), got %v", paths)
	}
	for _, p := range paths {
		base := filepath.Base(p)
		if !strings.HasPrefix(base, "g2-") && !strings.HasPrefix(base, "g3-") {
			t.Fatalf("stale generation file survived: %s", p)
		}
	}
}

func TestCheckpointFallsBackToPreviousEpoch(t *testing.T) {
	model := gmi.Box(4, 1, 1)
	// Two saves retain two epochs with distinct cursors; corrupting the
	// newest must make LoadCheckpoint come back with epoch 1's state.
	save := func(dir string) {
		t.Helper()
		err := pcu.Run(2, func(ctx *pcu.Ctx) error {
			dm := buildDistributed(ctx, 1)
			if err := SaveCheckpoint(dir, dm, Cursor{Phase: "old", Iter: 1}); err != nil {
				return err
			}
			return SaveCheckpoint(dir, dm, Cursor{Phase: "new", Iter: 2})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	loadCursor := func(dir string) (Cursor, error) {
		var cur Cursor
		err := pcu.Run(2, func(ctx *pcu.Ctx) error {
			dm, c, err := LoadCheckpoint(dir, ctx, model.Model)
			if err != nil {
				return err
			}
			if ctx.Rank() == 0 {
				cur = c
			}
			return partition.Verify(dm)
		})
		return cur, err
	}

	t.Run("corrupt newest part file", func(t *testing.T) {
		dir := t.TempDir()
		save(dir)
		man, _ := readManifest(dir)
		path := filepath.Join(dir, man.Files[0].Name)
		data, _ := os.ReadFile(path)
		data[len(data)/2] ^= 0x40
		os.WriteFile(path, data, 0o644)
		cur, err := loadCursor(dir)
		if err != nil {
			t.Fatalf("load should fall back to the previous epoch: %v", err)
		}
		if cur.Phase != "old" || cur.Iter != 1 {
			t.Fatalf("want previous epoch's cursor, got %+v", cur)
		}
	})
	t.Run("corrupt newest manifest", func(t *testing.T) {
		dir := t.TempDir()
		save(dir)
		os.WriteFile(filepath.Join(dir, manifestName), []byte("{ not json"), 0o644)
		cur, err := loadCursor(dir)
		if err != nil {
			t.Fatalf("load should fall back to the previous epoch: %v", err)
		}
		if cur.Phase != "old" || cur.Iter != 1 {
			t.Fatalf("want previous epoch's cursor, got %+v", cur)
		}
	})
	t.Run("both epochs corrupt", func(t *testing.T) {
		dir := t.TempDir()
		save(dir)
		os.WriteFile(filepath.Join(dir, manifestName), []byte("{ not json"), 0o644)
		os.WriteFile(filepath.Join(dir, prevManifestName), []byte("{ also bad"), 0o644)
		_, err := loadCursor(dir)
		if err == nil || !strings.Contains(err.Error(), "previous epoch also unloadable") {
			t.Fatalf("want a both-epochs failure, got %v", err)
		}
	})
	t.Run("healthy newest epoch wins", func(t *testing.T) {
		dir := t.TempDir()
		save(dir)
		cur, err := loadCursor(dir)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Phase != "new" || cur.Iter != 2 {
			t.Fatalf("want newest epoch's cursor, got %+v", cur)
		}
	})
}

func TestCheckpointCorruptInputs(t *testing.T) {
	model := gmi.Box(4, 1, 1)
	load := func(dir string) error {
		return pcu.Run(1, func(ctx *pcu.Ctx) error {
			_, _, err := LoadCheckpoint(dir, ctx, model.Model)
			return err
		})
	}
	save := func(dir string) {
		t.Helper()
		err := pcu.Run(2, func(ctx *pcu.Ctx) error {
			return SaveCheckpoint(dir, buildDistributed(ctx, 1), Cursor{})
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	t.Run("missing manifest", func(t *testing.T) {
		if err := load(t.TempDir()); err == nil {
			t.Fatal("checkpoint-less directory loaded")
		}
	})
	t.Run("bad manifest magic", func(t *testing.T) {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"magic":"junk"}`), 0o644)
		if err := load(dir); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("want bad-magic error, got %v", err)
		}
	})
	t.Run("truncated part file", func(t *testing.T) {
		dir := t.TempDir()
		save(dir)
		man, _ := readManifest(dir)
		path := filepath.Join(dir, man.Files[0].Name)
		data, _ := os.ReadFile(path)
		os.WriteFile(path, data[:len(data)/2], 0o644)
		if err := load(dir); err == nil || !strings.Contains(err.Error(), "bytes") {
			t.Fatalf("want size-mismatch error, got %v", err)
		}
	})
	t.Run("corrupt part file", func(t *testing.T) {
		dir := t.TempDir()
		save(dir)
		man, _ := readManifest(dir)
		path := filepath.Join(dir, man.Files[1].Name)
		data, _ := os.ReadFile(path)
		data[len(data)/2] ^= 0x40
		os.WriteFile(path, data, 0o644)
		if err := load(dir); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("want CRC error, got %v", err)
		}
	})
}
