package meshio

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/mesh"
	"github.com/fastmath/pumi-go/internal/partition"
	"github.com/fastmath/pumi-go/internal/pcu"
)

// Distributed checkpoint format. A checkpoint is a directory holding
// one binary file per part (mesh topology + tags via the meshio format,
// plus global ids, ownership and residence sets) and a JSON manifest
// naming the files with sizes and CRCs plus a restart cursor. The
// manifest is committed last by an atomic rename, so a crash mid-save
// leaves the previous checkpoint loadable; each save uses a fresh
// sequence number as its file prefix so it never overwrites the
// checkpoint it may be replacing. Remote-copy handles are process-local
// and are not stored: LoadCheckpoint rebuilds the links from residence
// sets by global id (partition.Assemble), which also lets a checkpoint
// saved on one world restart on a different rank count, as long as the
// rank count divides the part count.

const (
	checkpointMagic  = "pumi-checkpoint-v1"
	partMagic        = "PUMICK01"
	manifestName     = "checkpoint.json"
	prevManifestName = "checkpoint.prev.json"
	partFilePattern  = "g%d-part-%04d.pumip"
	partFileGlobStar = "g*-part-*.pumip"
)

// Cursor records where in an interrupted computation the checkpoint was
// taken, so a restart can resume instead of starting over.
type Cursor struct {
	Phase string `json:"phase"`
	Level int    `json:"level"`
	Iter  int    `json:"iter"`
}

// CheckpointFile describes one committed part file.
type CheckpointFile struct {
	Name string `json:"name"`
	Part int32  `json:"part"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc32"`
}

type checkpointManifest struct {
	Magic  string           `json:"magic"`
	Seq    int64            `json:"seq"`
	NParts int              `json:"nparts"`
	Dim    int              `json:"dim"`
	Cursor Cursor           `json:"cursor"`
	Files  []CheckpointFile `json:"files"`
}

// CheckpointExists reports whether dir holds a committed checkpoint.
func CheckpointExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

func readManifest(dir string) (*checkpointManifest, error) {
	return readManifestFile(dir, manifestName)
}

func readManifestFile(dir, name string) (*checkpointManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	var man checkpointManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("meshio: corrupt checkpoint manifest: %w", err)
	}
	if man.Magic != checkpointMagic {
		return nil, fmt.Errorf("meshio: bad checkpoint magic %q", man.Magic)
	}
	return &man, nil
}

// encodePart serializes one part: the mesh as a length-prefixed meshio
// blob (self-delimiting, since the mesh reader buffers), then the gid /
// owner / residence record of every entity in iteration order — the
// same order the mesh blob stores them, so load realigns by position.
func encodePart(p *partition.Part) ([]byte, error) {
	m := p.M
	var buf bytes.Buffer
	buf.WriteString(partMagic)
	var blob bytes.Buffer
	if err := Write(&blob, m); err != nil {
		return nil, err
	}
	binary.Write(&buf, binary.LittleEndian, uint64(blob.Len()))
	buf.Write(blob.Bytes())
	binary.Write(&buf, binary.LittleEndian, m.Part())
	binary.Write(&buf, binary.LittleEndian, p.FreshCounter())
	for d := 0; d <= m.Dim(); d++ {
		binary.Write(&buf, binary.LittleEndian, uint32(m.Count(d)))
		for e := range m.Iter(d) {
			binary.Write(&buf, binary.LittleEndian, p.Gid(e))
			binary.Write(&buf, binary.LittleEndian, m.Owner(e))
			res := m.Residence(e).Values()
			binary.Write(&buf, binary.LittleEndian, uint32(len(res)))
			binary.Write(&buf, binary.LittleEndian, res)
		}
	}
	return buf.Bytes(), nil
}

// decodePart rebuilds one part from its file contents, returning the
// multi-part residence sets for partition.Assemble.
func decodePart(data []byte, pid int32, model *gmi.Model, dim int) (*partition.Part, map[mesh.Ent][]int32, error) {
	r := bytes.NewReader(data)
	head := make([]byte, len(partMagic))
	if _, err := r.Read(head); err != nil || string(head) != partMagic {
		return nil, nil, fmt.Errorf("meshio: part %d: bad part-file magic %q", pid, head)
	}
	var blobLen uint64
	if err := binary.Read(r, binary.LittleEndian, &blobLen); err != nil {
		return nil, nil, fmt.Errorf("meshio: part %d: truncated part file: %w", pid, err)
	}
	if blobLen > uint64(r.Len()) {
		return nil, nil, fmt.Errorf("meshio: part %d: mesh blob of %d bytes but only %d remain", pid, blobLen, r.Len())
	}
	blob := make([]byte, blobLen)
	if _, err := r.Read(blob); err != nil {
		return nil, nil, err
	}
	m, err := Read(bytes.NewReader(blob), model)
	if err != nil {
		return nil, nil, fmt.Errorf("meshio: part %d: %w", pid, err)
	}
	if m.Dim() != dim {
		return nil, nil, fmt.Errorf("meshio: part %d has dimension %d, manifest says %d", pid, m.Dim(), dim)
	}
	var storedPid int32
	var counter int64
	if err := binary.Read(r, binary.LittleEndian, &storedPid); err != nil {
		return nil, nil, fmt.Errorf("meshio: part %d: truncated part file: %w", pid, err)
	}
	if storedPid != pid {
		return nil, nil, fmt.Errorf("meshio: file for part %d stores part id %d", pid, storedPid)
	}
	if err := binary.Read(r, binary.LittleEndian, &counter); err != nil {
		return nil, nil, fmt.Errorf("meshio: part %d: truncated part file: %w", pid, err)
	}
	m.SetPart(pid)
	p := partition.NewPart(m)
	p.RestoreFreshCounter(counter)
	res := map[mesh.Ent][]int32{}
	for d := 0; d <= dim; d++ {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, nil, fmt.Errorf("meshio: part %d: truncated part file: %w", pid, err)
		}
		if int(n) != m.Count(d) {
			return nil, nil, fmt.Errorf("meshio: part %d: %d dim-%d records for %d entities", pid, n, d, m.Count(d))
		}
		for e := range m.Iter(d) {
			var gid int64
			var owner int32
			var nres uint32
			if err := binary.Read(r, binary.LittleEndian, &gid); err != nil {
				return nil, nil, fmt.Errorf("meshio: part %d: truncated part file: %w", pid, err)
			}
			binary.Read(r, binary.LittleEndian, &owner)
			if err := binary.Read(r, binary.LittleEndian, &nres); err != nil {
				return nil, nil, fmt.Errorf("meshio: part %d: truncated part file: %w", pid, err)
			}
			if nres == 0 || uint64(nres)*4 > uint64(r.Len()) {
				return nil, nil, fmt.Errorf("meshio: part %d: corrupt residence count %d", pid, nres)
			}
			vals := make([]int32, nres)
			if err := binary.Read(r, binary.LittleEndian, &vals); err != nil {
				return nil, nil, err
			}
			p.RestoreGid(e, gid)
			m.SetOwner(e, owner)
			if len(vals) > 1 {
				res[e] = vals
			}
		}
	}
	if r.Len() != 0 {
		return nil, nil, fmt.Errorf("meshio: part %d: %d trailing bytes", pid, r.Len())
	}
	return p, res, nil
}

// GatherErrors is the collective agreement step: every rank contributes
// its local error (or none) and all ranks return the same combined
// error, so a local failure on one rank cannot desynchronize the world.
// Use it to reconcile rank-local failures (file loads on rank 0, local
// validation) before the next collective; returning early from only the
// failing rank leaves the others blocked in the schedule.
func GatherErrors(ctx *pcu.Ctx, localErr error, doing string) error {
	return gatherErrors(ctx, localErr, doing)
}

// gatherErrors is the collective agreement step behind GatherErrors.
func gatherErrors(ctx *pcu.Ctx, localErr error, doing string) error {
	s := ""
	if localErr != nil {
		s = localErr.Error()
	}
	var causes []string
	for r, m := range pcu.Allgather(ctx, s) {
		if m != "" {
			causes = append(causes, fmt.Sprintf("rank %d: %s", r, m))
		}
	}
	if len(causes) == 0 {
		return nil
	}
	return fmt.Errorf("meshio: %s: %s", doing, strings.Join(causes, "; "))
}

type saveReport struct {
	files []CheckpointFile
	err   string
}

// SaveCheckpoint writes a restartable snapshot of dm into dir. It is
// collective; every rank writes its own parts and rank 0 commits the
// manifest last, atomically, after all ranks report success. The cursor
// is stored verbatim for the restarting computation. Ghost copies are
// not checkpointable; remove them first.
func SaveCheckpoint(dir string, dm *partition.DMesh, cur Cursor) error {
	ctx := dm.Ctx
	ctx.Trace().Begin("checkpoint.save")
	defer ctx.Trace().End("checkpoint.save")
	saveStart := time.Now()
	defer func() {
		ctx.Metrics().Histogram("meshio.checkpoint.save.ns").Observe(ctx.Rank(), int64(time.Since(saveStart)))
	}()
	var seq int64 = 1
	if ctx.Rank() == 0 {
		if man, err := readManifest(dir); err == nil {
			seq = man.Seq + 1
		}
	}
	seq = pcu.Bcast(ctx, 0, seq)

	var localErr error
	var metas []CheckpointFile
	if err := os.MkdirAll(dir, 0o755); err != nil {
		localErr = err
	}
	for _, p := range dm.Parts {
		if localErr != nil {
			break
		}
		if p.HasGhosts() {
			localErr = fmt.Errorf("part %d holds ghosts; remove ghosts before checkpointing", p.M.Part())
			break
		}
		data, err := encodePart(p)
		if err != nil {
			localErr = err
			break
		}
		ctx.Metrics().Histogram("meshio.checkpoint.save.bytes").Observe(ctx.Rank(), int64(len(data)))
		name := fmt.Sprintf(partFilePattern, seq, p.M.Part())
		path := filepath.Join(dir, name)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			localErr = err
			break
		}
		if err := os.Rename(tmp, path); err != nil {
			localErr = err
			break
		}
		metas = append(metas, CheckpointFile{
			Name: name,
			Part: p.M.Part(),
			Size: int64(len(data)),
			CRC:  crc32.ChecksumIEEE(data),
		})
	}
	errStr := ""
	if localErr != nil {
		errStr = localErr.Error()
	}
	reports := pcu.Allgather(ctx, saveReport{files: metas, err: errStr})

	commitErr := ""
	if ctx.Rank() == 0 {
		var causes []string
		var files []CheckpointFile
		for r, rep := range reports {
			if rep.err != "" {
				causes = append(causes, fmt.Sprintf("rank %d: %s", r, rep.err))
			}
			files = append(files, rep.files...)
		}
		switch {
		case len(causes) > 0:
			commitErr = strings.Join(causes, "; ")
		default:
			sort.Slice(files, func(i, j int) bool { return files[i].Part < files[j].Part })
			man := checkpointManifest{
				Magic:  checkpointMagic,
				Seq:    seq,
				NParts: dm.NParts(),
				Dim:    dm.Dim,
				Cursor: cur,
				Files:  files,
			}
			if err := retireManifest(dir); err != nil {
				commitErr = err.Error()
			} else if err := commitManifest(dir, &man); err != nil {
				commitErr = err.Error()
			} else {
				cleanupStale(dir, &man)
			}
		}
	}
	commitErr = pcu.Bcast(ctx, 0, commitErr)
	if commitErr != "" {
		return fmt.Errorf("meshio: saving checkpoint: %s", commitErr)
	}
	return nil
}

func commitManifest(dir string, man *checkpointManifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// retireManifest moves the currently committed manifest into the
// previous-epoch slot before a new commit replaces it, so the last two
// checkpoint generations stay loadable (LoadCheckpoint falls back to
// the previous epoch when the newest one fails validation). Each step
// is an atomic rename: a crash anywhere leaves both slots readable.
func retireManifest(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil // first checkpoint in this directory
	}
	if err != nil {
		return err
	}
	path := filepath.Join(dir, prevManifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// cleanupStale removes part files referenced by neither the committed
// manifest nor the retained previous epoch's, so exactly the last two
// generations stay on disk. Best effort: a leftover file can never be
// confused for current state, since loads go through a manifest.
func cleanupStale(dir string, man *checkpointManifest) {
	keep := map[string]bool{}
	for _, f := range man.Files {
		keep[f.Name] = true
	}
	if prev, err := readManifestFile(dir, prevManifestName); err == nil {
		for _, f := range prev.Files {
			keep[f.Name] = true
		}
	}
	paths, _ := filepath.Glob(filepath.Join(dir, partFileGlobStar))
	for _, p := range paths {
		if !keep[filepath.Base(p)] {
			os.Remove(p)
		}
	}
}

// LoadCheckpoint rebuilds a DMesh from the checkpoint in dir on the
// calling world, which may have a different rank count than the saver
// as long as it divides the part count. It is collective and returns
// the same result on every rank: the restored mesh passes
// partition.Verify, and the cursor tells the caller where to resume.
//
// When the newest epoch fails validation — an unreadable manifest, a
// missing or damaged part file — LoadCheckpoint falls back to the
// retained previous epoch (SaveCheckpoint keeps the last two
// generations). The fallback decision is collective, so every rank
// loads the same epoch.
func LoadCheckpoint(dir string, ctx *pcu.Ctx, model *gmi.Model) (*partition.DMesh, Cursor, error) {
	ctx.Trace().Begin("checkpoint.load")
	defer ctx.Trace().End("checkpoint.load")
	loadStart := time.Now()
	defer func() {
		ctx.Metrics().Histogram("meshio.checkpoint.load.ns").Observe(ctx.Rank(), int64(time.Since(loadStart)))
	}()
	dm, cur, err := loadEpoch(dir, manifestName, ctx, model)
	if err == nil {
		return dm, cur, nil
	}
	// The newest epoch is unreadable. The first-attempt error is already
	// collective (gatherErrors), as is the fallback decision below, so
	// every rank takes the same path.
	hasPrev := false
	if ctx.Rank() == 0 {
		_, statErr := os.Stat(filepath.Join(dir, prevManifestName))
		hasPrev = statErr == nil
	}
	if !pcu.Bcast(ctx, 0, hasPrev) {
		return nil, Cursor{}, err
	}
	dm, cur, perr := loadEpoch(dir, prevManifestName, ctx, model)
	if perr != nil {
		return nil, Cursor{}, fmt.Errorf("meshio: newest checkpoint epoch unloadable (%v); previous epoch also unloadable: %w", err, perr)
	}
	return dm, cur, nil
}

// loadEpoch loads the checkpoint generation committed under the given
// manifest file name. Collective; failures are reconciled so every rank
// returns the same error.
func loadEpoch(dir, manifest string, ctx *pcu.Ctx, model *gmi.Model) (*partition.DMesh, Cursor, error) {
	man, localErr := readManifestFile(dir, manifest)
	if err := gatherErrors(ctx, localErr, "loading checkpoint manifest"); err != nil {
		return nil, Cursor{}, err
	}
	if man.NParts%ctx.Size() != 0 {
		return nil, Cursor{}, fmt.Errorf("meshio: checkpoint has %d parts, not divisible across %d ranks",
			man.NParts, ctx.Size())
	}
	k := man.NParts / ctx.Size()
	byPart := map[int32]CheckpointFile{}
	for _, f := range man.Files {
		byPart[f.Part] = f
	}
	parts := make([]*partition.Part, 0, k)
	res := make([]map[mesh.Ent][]int32, 0, k)
	for i := 0; i < k && localErr == nil; i++ {
		pid := int32(ctx.Rank()*k + i)
		f, ok := byPart[pid]
		if !ok {
			localErr = fmt.Errorf("meshio: checkpoint manifest lists no file for part %d", pid)
			break
		}
		data, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			localErr = err
			break
		}
		if int64(len(data)) != f.Size {
			localErr = fmt.Errorf("meshio: %s is %d bytes, manifest says %d", f.Name, len(data), f.Size)
			break
		}
		if crc := crc32.ChecksumIEEE(data); crc != f.CRC {
			localErr = fmt.Errorf("meshio: %s fails its CRC check (%08x != %08x)", f.Name, crc, f.CRC)
			break
		}
		ctx.Metrics().Histogram("meshio.checkpoint.load.bytes").Observe(ctx.Rank(), int64(len(data)))
		p, r, err := decodePart(data, pid, model, man.Dim)
		if err != nil {
			localErr = err
			break
		}
		parts = append(parts, p)
		res = append(res, r)
	}
	if err := gatherErrors(ctx, localErr, "loading checkpoint parts"); err != nil {
		return nil, Cursor{}, err
	}
	dm, err := partition.Assemble(ctx, model, man.Dim, k, parts, res)
	if err != nil {
		return nil, Cursor{}, err
	}
	return dm, man.Cursor, nil
}
