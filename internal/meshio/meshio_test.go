package meshio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fastmath/pumi-go/internal/ds"
	"github.com/fastmath/pumi-go/internal/field"
	"github.com/fastmath/pumi-go/internal/gmi"
	"github.com/fastmath/pumi-go/internal/meshgen"
	"github.com/fastmath/pumi-go/internal/vec"
)

func TestRoundTrip3D(t *testing.T) {
	model := gmi.Box(2, 1, 1)
	m := meshgen.Box3D(model, 3, 2, 2)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf, model.Model)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d <= 3; d++ {
		if m2.Count(d) != m.Count(d) {
			t.Fatalf("dim %d: %d vs %d", d, m2.Count(d), m.Count(d))
		}
	}
	if err := m2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Classification preserved: boundary face counts match.
	nb1, nb2 := 0, 0
	for f := range m.Iter(2) {
		if m.Classification(f).Dim == 2 {
			nb1++
		}
	}
	for f := range m2.Iter(2) {
		if m2.Classification(f).Dim == 2 {
			nb2++
		}
	}
	if nb1 != nb2 {
		t.Fatalf("boundary faces %d vs %d", nb1, nb2)
	}
	// Volume preserved.
	v1, v2 := 0.0, 0.0
	for el := range m.Elements() {
		v1 += m.Measure(el)
	}
	for el := range m2.Elements() {
		v2 += m2.Measure(el)
	}
	if v1 != v2 {
		t.Fatalf("volume %g vs %g", v1, v2)
	}
}

func TestRoundTrip2D(t *testing.T) {
	model := gmi.Rect(1, 2)
	m := meshgen.Rect2D(model, 3, 4)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf, model.Model)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Count(2) != 24 || m2.Count(0) != 20 {
		t.Fatalf("counts %d %d", m2.Count(2), m2.Count(0))
	}
	if err := m2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.pumi")
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 2, 2, 2)
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFile(path, model.Model)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Count(3) != 48 {
		t.Fatalf("tets = %d", m2.Count(3))
	}
	if _, err := LoadFile(filepath.Join(dir, "missing"), nil); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Read(strings.NewReader("JUNKJUNK"), nil); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(strings.NewReader(""), nil); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated stream.
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 1, 1, 1)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc), model.Model); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	parts := []int32{0, 1, 2, 1, 0, 3}
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, parts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAssignment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(parts) {
		t.Fatalf("len %d", len(got))
	}
	for i := range parts {
		if got[i] != parts[i] {
			t.Fatal("mismatch")
		}
	}
	if _, err := ReadAssignment(strings.NewReader("NOPE")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestAssignmentRejectsNegativePartID(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAssignment(&buf, []int32{0, 1, -2, 1}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadAssignment(&buf)
	if err == nil {
		t.Fatal("negative part id accepted")
	}
	if !strings.Contains(err.Error(), "negative part id") {
		t.Fatalf("unstructured error: %v", err)
	}
}

func TestTagAndFieldRoundTrip(t *testing.T) {
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 2, 2, 2)
	// A float element tag, an int vertex tag, and a nodal field (which
	// is a float-slice tag underneath).
	wt, _ := m.Tags.Create("w", ds.TagFloat, 0)
	for el := range m.Elements() {
		m.Tags.SetFloat(wt, el, m.Centroid(el).X)
	}
	it, _ := m.Tags.Create("id", ds.TagInt, 0)
	i := int64(0)
	for v := range m.Iter(0) {
		m.Tags.SetInt(it, v, i)
		i++
	}
	f, err := field.New(m, "u", 2, field.Linear)
	if err != nil {
		t.Fatal(err)
	}
	f.SetByFunc(func(p vec.V) []float64 { return []float64{p.X, p.Y + p.Z} })

	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf, model.Model)
	if err != nil {
		t.Fatal(err)
	}
	wt2 := m2.Tags.Find("w")
	if wt2 == nil {
		t.Fatal("element tag lost")
	}
	for el := range m2.Elements() {
		got, ok := m2.Tags.GetFloat(wt2, el)
		if !ok || got != m2.Centroid(el).X {
			t.Fatalf("element tag %g at %v", got, m2.Centroid(el))
		}
	}
	it2 := m2.Tags.Find("id")
	seen := map[int64]bool{}
	for v := range m2.Iter(0) {
		got, ok := m2.Tags.GetInt(it2, v)
		if !ok || seen[got] {
			t.Fatal("vertex int tag lost or duplicated")
		}
		seen[got] = true
	}
	f2 := field.Find(m2, "u", field.Linear)
	if f2 == nil || f2.Components() != 2 {
		t.Fatal("field lost")
	}
	for v := range m2.Iter(0) {
		got, ok := f2.Get(v)
		p := m2.Coord(v)
		if !ok || got[0] != p.X || got[1] != p.Y+p.Z {
			t.Fatalf("field values %v at %v", got, p)
		}
	}
}

func TestV1StillReadable(t *testing.T) {
	// A stream with the old magic and no tag section must still load.
	model := gmi.Box(1, 1, 1)
	m := meshgen.Box3D(model, 1, 1, 1)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Rewrite the magic to V1 and truncate the (empty) tag directory.
	copy(raw, []byte("PUMIGO01"))
	// The empty tag section is 4 bytes (count) + 1 presence byte per
	// entity; removing it must still parse under V1.
	nEnts := m.Count(0) + m.Count(1) + m.Count(2) + m.Count(3)
	trunc := raw[:len(raw)-4-nEnts]
	m2, err := Read(bytes.NewReader(trunc), model.Model)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Count(3) != 6 {
		t.Fatalf("tets = %d", m2.Count(3))
	}
}
